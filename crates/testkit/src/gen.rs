//! Seeded trace and schedule generators.
//!
//! One seed determines everything: the point distribution, the operation
//! mix, cursor session shapes and (for concurrent runs) the per-writer
//! schedules. Harnesses sweep `workload::PointDistribution` ×
//! [`Topology`](crate::Topology) × seed and replay the generated traces, so
//! a failing case is fully described by `(distribution, topology, seed)` —
//! and by the shrunk `.trace` file the shrinker leaves behind.

use epst::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workload::{PointDistribution, PointGen};

use crate::trace::{BatchItem, Trace, TraceOp};

/// The `k` palette the generators draw queries from: both sides of the
/// small-k/large-k crossover (`crossover_l = 64` in the harness builds).
const K_PALETTE: [usize; 9] = [1, 2, 7, 31, 63, 64, 65, 200, 1000];

/// Relative weights of the operation classes in a generated trace.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Eager queries (answer + count checked against the spec).
    pub query: f64,
    /// Point inserts of fresh, collision-free points.
    pub insert: f64,
    /// Point deletes of random live points.
    pub delete: f64,
    /// Atomic batches mixing deletes and fresh inserts.
    pub batch: f64,
    /// Cursor traffic (open / next / token-round-trip resume).
    pub cursor: f64,
    /// Rebalance hints (sharded topologies repartition; others skip).
    pub rebalance: f64,
}

impl OpMix {
    /// The default serving mix: query-heavy with all update paths hot.
    pub fn serving() -> Self {
        Self {
            query: 0.34,
            insert: 0.20,
            delete: 0.14,
            batch: 0.12,
            cursor: 0.17,
            rebalance: 0.03,
        }
    }

    /// Delete-heavy: exercises refill/carry paths and cursor reads over a
    /// shrinking set (the regime that exposed both PR 3 ePST seed bugs).
    pub fn delete_heavy() -> Self {
        Self {
            query: 0.25,
            insert: 0.10,
            delete: 0.35,
            batch: 0.10,
            cursor: 0.18,
            rebalance: 0.02,
        }
    }

    /// Cursor-heavy: long paginations with writes interleaved between
    /// rounds (the §6 consistency contract under stress).
    pub fn cursor_heavy() -> Self {
        Self {
            query: 0.15,
            insert: 0.15,
            delete: 0.15,
            batch: 0.05,
            cursor: 0.48,
            rebalance: 0.02,
        }
    }

    fn total(&self) -> f64 {
        self.query + self.insert + self.delete + self.batch + self.cursor + self.rebalance
    }
}

/// Everything that determines a generated trace.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Coordinate/score distribution of the point universe.
    pub distribution: PointDistribution,
    /// Points loaded (as batches) before the mixed phase.
    pub preload: usize,
    /// Mixed operations after the preload.
    pub ops: usize,
    /// The seed (derive it from a [`crate::Seed`] so repro lines work).
    pub seed: u64,
    /// The operation mix.
    pub mix: OpMix,
}

impl TraceSpec {
    /// The harness default: `preload` points, then `ops` serving-mix
    /// operations, under the given distribution and seed.
    pub fn new(distribution: PointDistribution, seed: u64) -> Self {
        Self {
            distribution,
            preload: 600,
            ops: 400,
            seed,
            mix: OpMix::serving(),
        }
    }
}

/// Generate the deterministic trace `spec` describes. The preload phase
/// arrives as atomic batches of 128 (exercising the batch commit path on
/// every topology); the mixed phase draws from the op mix. All generated
/// operations are valid at their point in the trace — inserts are fresh,
/// deletes target live points — so the replayer applies everything.
pub fn generate(spec: &TraceSpec) -> Trace {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let universe = PointGen {
        distribution: spec.distribution,
        seed: spec.seed ^ 0x9E37_79B9,
    }
    .generate(spec.preload + spec.ops);
    let (preload, fresh) = universe.split_at(spec.preload);
    let x_max = universe.iter().map(|p| p.x).max().unwrap_or(1) + 2;

    let mut ops: Vec<TraceOp> = Vec::with_capacity(spec.preload / 128 + spec.ops + 2);
    for chunk in preload.chunks(128) {
        ops.push(TraceOp::Batch(
            chunk.iter().map(|&p| BatchItem::Insert(p)).collect(),
        ));
    }

    let mut live: Vec<Point> = preload.to_vec();
    let mut fresh_cursor = 0usize;
    let mut next_cursor_id = 0u32;
    // Cursor ids with fetches plausibly remaining (sessions interleave).
    let mut open_cursors: Vec<u32> = Vec::new();
    let total = spec.mix.total();
    for _ in 0..spec.ops {
        let mut roll: f64 = rng.gen::<f64>() * total;
        roll -= spec.mix.query;
        if roll < 0.0 {
            let a = rng.gen_range(0..x_max);
            let b = rng.gen_range(a..=x_max);
            let k = K_PALETTE[rng.gen_range(0..K_PALETTE.len())];
            ops.push(TraceOp::Query { x1: a, x2: b, k });
            continue;
        }
        roll -= spec.mix.insert;
        if roll < 0.0 {
            if fresh_cursor < fresh.len() {
                let p = fresh[fresh_cursor];
                fresh_cursor += 1;
                live.push(p);
                ops.push(TraceOp::Insert(p));
            }
            continue;
        }
        roll -= spec.mix.delete;
        if roll < 0.0 {
            if !live.is_empty() {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                ops.push(TraceOp::Delete(victim));
            }
            continue;
        }
        roll -= spec.mix.batch;
        if roll < 0.0 {
            let mut items = Vec::new();
            let dels = rng.gen_range(0..=8usize.min(live.len()));
            for _ in 0..dels {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                items.push(BatchItem::Delete(victim));
            }
            for _ in 0..rng.gen_range(1..=12usize) {
                if fresh_cursor >= fresh.len() {
                    break;
                }
                let p = fresh[fresh_cursor];
                fresh_cursor += 1;
                live.push(p);
                items.push(BatchItem::Insert(p));
            }
            if !items.is_empty() {
                ops.push(TraceOp::Batch(items));
            }
            continue;
        }
        roll -= spec.mix.cursor;
        if roll < 0.0 {
            if open_cursors.len() < 2 && (open_cursors.is_empty() || rng.gen_bool(0.4)) {
                let id = next_cursor_id;
                next_cursor_id += 1;
                let a = rng.gen_range(0..x_max / 2);
                let b = rng.gen_range(a..=x_max);
                ops.push(TraceOp::CursorOpen {
                    id,
                    x1: a,
                    x2: b,
                    k: rng.gen_range(10..=200),
                    page: [3usize, 7, 16, 32][rng.gen_range(0usize..4)],
                    strict: rng.gen_bool(0.25),
                });
                open_cursors.push(id);
            } else {
                let slot = rng.gen_range(0..open_cursors.len());
                let id = open_cursors[slot];
                if rng.gen_bool(0.15) {
                    ops.push(TraceOp::CursorResume { id });
                } else {
                    ops.push(TraceOp::CursorNext { id });
                    // Retire long sessions so ids rotate.
                    if rng.gen_bool(0.2) {
                        open_cursors.swap_remove(slot);
                    }
                }
            }
            continue;
        }
        ops.push(TraceOp::RebalanceHint);
    }
    Trace::new(ops)
}

/// A deterministic multi-writer schedule for recorded-history runs: each
/// writer owns one disjoint coordinate territory (so schedules commute and
/// every interleaving is valid), readers query anywhere.
#[derive(Debug, Clone)]
pub struct ConcurrentPlan {
    /// Points bulk-built before the threads start.
    pub preload: Vec<Point>,
    /// Per-writer operation sequences (inserts, deletes and batches confined
    /// to the writer's territory).
    pub writer_ops: Vec<Vec<TraceOp>>,
    /// Per-reader `(x1, x2, k)` query sequences.
    pub reader_queries: Vec<Vec<(u64, u64, usize)>>,
}

/// Generate a [`ConcurrentPlan`]: `writers` disjoint territories of
/// `per_writer` preloaded points each, `ops_per_writer` mixed update ops per
/// writer, and `readers` × `queries_per_reader` spanning queries.
pub fn generate_concurrent(
    seed: u64,
    writers: usize,
    per_writer: usize,
    ops_per_writer: usize,
    readers: usize,
    queries_per_reader: usize,
) -> ConcurrentPlan {
    let (span, territories) = workload::territories(seed, writers, 2 * per_writer);
    let preload: Vec<Point> = territories
        .iter()
        .flat_map(|t| t[..per_writer].to_vec())
        .collect();
    let x_max = span * writers as u64;
    let writer_ops = territories
        .iter()
        .enumerate()
        .map(|(w, points)| {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x77 + w as u64 * 0x9E37));
            let mut live: Vec<Point> = points[..per_writer].to_vec();
            let mut fresh: Vec<Point> = points[per_writer..].to_vec();
            let mut ops = Vec::with_capacity(ops_per_writer);
            for _ in 0..ops_per_writer {
                let roll: f64 = rng.gen();
                if roll < 0.4 && !fresh.is_empty() {
                    let p = fresh.pop().unwrap();
                    live.push(p);
                    ops.push(TraceOp::Insert(p));
                } else if roll < 0.7 && !live.is_empty() {
                    let victim = live.swap_remove(rng.gen_range(0..live.len()));
                    ops.push(TraceOp::Delete(victim));
                } else {
                    let mut items = Vec::new();
                    for _ in 0..rng.gen_range(1..=6usize) {
                        if rng.gen_bool(0.5) && !live.is_empty() {
                            let victim = live.swap_remove(rng.gen_range(0..live.len()));
                            items.push(BatchItem::Delete(victim));
                        } else if let Some(p) = fresh.pop() {
                            live.push(p);
                            items.push(BatchItem::Insert(p));
                        }
                    }
                    if items.is_empty() {
                        continue;
                    }
                    ops.push(TraceOp::Batch(items));
                }
            }
            ops
        })
        .collect();
    let reader_queries = (0..readers)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x4EAD + r as u64 * 0x51));
            (0..queries_per_reader)
                .map(|_| {
                    let a = rng.gen_range(0..x_max);
                    let b = rng.gen_range(a..=x_max);
                    (a, b, rng.gen_range(1usize..128))
                })
                .collect()
        })
        .collect();
    ConcurrentPlan {
        preload,
        writer_ops,
        reader_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;
    use crate::topology::Topology;

    #[test]
    fn generation_is_deterministic() {
        let spec = TraceSpec::new(PointDistribution::Uniform, 7);
        assert_eq!(generate(&spec), generate(&spec));
        let other = TraceSpec {
            seed: 8,
            ..spec.clone()
        };
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn generated_traces_round_trip_and_replay_clean() {
        let spec = TraceSpec {
            preload: 200,
            ops: 120,
            ..TraceSpec::new(PointDistribution::Clustered, 11)
        };
        let trace = generate(&spec);
        let back: Trace = trace.to_string().parse().unwrap();
        assert_eq!(back, trace);
        let stats = replay(&trace, Topology::Sharded(4)).unwrap_or_else(|d| panic!("{d}"));
        // Everything the generator emits is valid at its point in the trace
        // except cursor fetches whose session already drained (harmless).
        assert!(stats.applied * 10 >= trace.len() * 9, "{stats:?}");
    }

    #[test]
    fn concurrent_plans_have_disjoint_writer_ops() {
        let plan = generate_concurrent(3, 4, 50, 30, 2, 10);
        assert_eq!(plan.writer_ops.len(), 4);
        assert_eq!(plan.reader_queries.len(), 2);
        let mut seen = std::collections::HashSet::new();
        for ops in &plan.writer_ops {
            for op in ops {
                let pts: Vec<Point> = match op {
                    TraceOp::Insert(p) | TraceOp::Delete(p) => vec![*p],
                    TraceOp::Batch(items) => items
                        .iter()
                        .map(|i| match i {
                            BatchItem::Insert(p) | BatchItem::Delete(p) => *p,
                        })
                        .collect(),
                    _ => vec![],
                };
                for p in pts {
                    seen.insert(p.score);
                }
            }
        }
        assert!(!seen.is_empty());
    }
}
