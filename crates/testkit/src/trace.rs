//! The serializable operation-trace DSL.
//!
//! A [`Trace`] is a sequence of [`TraceOp`]s — the full observable surface
//! of a serving topology: point updates, atomic batches, eager queries,
//! cursor sessions (open / fetch / token-round-trip resume) and rebalance
//! hints. Traces round-trip through a line-oriented text format (`.trace`
//! files) via `Display` / `FromStr`, so every failure the harnesses find is
//! a file that replays with one command and diffs like source code.
//!
//! # The `.trace` format
//!
//! ```text
//! topktrace v1
//! # comments and blank lines are ignored
//! ins 17 4200            # insert point (x = 17, score = 4200)
//! del 17 4200            # delete that exact point
//! batch ins 1 10 ; ins 2 20 ; del 1 10
//! query 0 1000 5         # top-5 over x ∈ [0, 1000]
//! open 0 0 1000 50 10 perround   # cursor 0: k = 50, pages of 10
//! next 0                 # fetch cursor 0's next page
//! resume 0               # cut cursor 0's token, round-trip it, reopen
//! open 1 0 1000 20 5 strict      # strict cursors pin a snapshot
//! rebalance              # repartition hint (sharded topologies)
//! ```
//!
//! Every line is one op; the header line pins the format version. The
//! parser reports the 1-based line number of the first offending line, so
//! hand-edited traces fail loudly instead of replaying something else.

use std::fmt;
use std::path::Path;
use std::str::FromStr;

use epst::Point;

/// The header line every `.trace` file starts with.
pub const TRACE_HEADER: &str = "topktrace v1";

/// One entry of a [`TraceOp::Batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchItem {
    /// Insert this point as part of the batch.
    Insert(Point),
    /// Delete this point as part of the batch (a miss is legal and counted,
    /// exactly as in [`topk_core::UpdateBatch`]).
    Delete(Point),
}

/// One operation of a trace: the serializable union of everything a serving
/// topology can be asked to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Insert a point.
    Insert(Point),
    /// Delete a point (exact match).
    Delete(Point),
    /// Apply these items as one atomic [`topk_core::UpdateBatch`].
    Batch(Vec<BatchItem>),
    /// Eager top-`k` query over `[x1, x2]`.
    Query {
        /// Lower end of the range.
        x1: u64,
        /// Upper end of the range.
        x2: u64,
        /// Number of results requested.
        k: usize,
    },
    /// Open (or replace) cursor `id` over `[x1, x2]` with pages of `page`
    /// points; `strict` selects [`topk_core::Consistency::Strict`].
    CursorOpen {
        /// Cursor slot this session occupies (reused slots replace).
        id: u32,
        /// Lower end of the range.
        x1: u64,
        /// Upper end of the range.
        x2: u64,
        /// Total number of results the cursor may emit.
        k: usize,
        /// Page size of each fetch round.
        page: usize,
        /// Whether the cursor pins a strict snapshot.
        strict: bool,
    },
    /// Fetch the next page of cursor `id`.
    CursorNext {
        /// The cursor slot.
        id: u32,
    },
    /// Cut cursor `id`'s resume token, round-trip it through its wire
    /// string, drop the cursor, and reopen it from the parsed token.
    CursorResume {
        /// The cursor slot.
        id: u32,
    },
    /// Ask the topology to repartition now (a no-op on unsharded
    /// topologies, [`topk_core::ShardedTopK::rebalance_now`] on sharded).
    RebalanceHint,
}

impl fmt::Display for BatchItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchItem::Insert(p) => write!(f, "ins {} {}", p.x, p.score),
            BatchItem::Delete(p) => write!(f, "del {} {}", p.x, p.score),
        }
    }
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceOp::Insert(p) => write!(f, "ins {} {}", p.x, p.score),
            TraceOp::Delete(p) => write!(f, "del {} {}", p.x, p.score),
            TraceOp::Batch(items) => {
                write!(f, "batch ")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ; ")?;
                    }
                    write!(f, "{item}")?;
                }
                Ok(())
            }
            TraceOp::Query { x1, x2, k } => write!(f, "query {x1} {x2} {k}"),
            TraceOp::CursorOpen {
                id,
                x1,
                x2,
                k,
                page,
                strict,
            } => write!(
                f,
                "open {id} {x1} {x2} {k} {page} {}",
                if *strict { "strict" } else { "perround" }
            ),
            TraceOp::CursorNext { id } => write!(f, "next {id}"),
            TraceOp::CursorResume { id } => write!(f, "resume {id}"),
            TraceOp::RebalanceHint => write!(f, "rebalance"),
        }
    }
}

/// Why a trace (or one of its lines) failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line (0 for file-level errors).
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace parse error: {}", self.message)
        } else {
            write!(
                f,
                "trace parse error at line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for TraceParseError {}

fn parse_point(words: &mut std::str::SplitWhitespace<'_>, what: &str) -> Result<Point, String> {
    let x = words
        .next()
        .ok_or_else(|| format!("{what}: missing x"))?
        .parse::<u64>()
        .map_err(|e| format!("{what}: bad x ({e})"))?;
    let score = words
        .next()
        .ok_or_else(|| format!("{what}: missing score"))?
        .parse::<u64>()
        .map_err(|e| format!("{what}: bad score ({e})"))?;
    Ok(Point::new(x, score))
}

fn parse_num<T: FromStr>(words: &mut std::str::SplitWhitespace<'_>, what: &str) -> Result<T, String>
where
    T::Err: fmt::Display,
{
    words
        .next()
        .ok_or_else(|| format!("missing {what}"))?
        .parse::<T>()
        .map_err(|e| format!("bad {what} ({e})"))
}

fn expect_end(words: &mut std::str::SplitWhitespace<'_>) -> Result<(), String> {
    match words.next() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected trailing token '{extra}'")),
    }
}

impl FromStr for TraceOp {
    type Err = String;

    fn from_str(line: &str) -> Result<Self, String> {
        let mut words = line.split_whitespace();
        let verb = words.next().ok_or("empty op line")?;
        let op = match verb {
            "ins" => TraceOp::Insert(parse_point(&mut words, "ins")?),
            "del" => TraceOp::Delete(parse_point(&mut words, "del")?),
            "batch" => {
                let rest = line.trim_start().strip_prefix("batch").unwrap_or("");
                let mut items = Vec::new();
                for part in rest.split(';') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let mut iw = part.split_whitespace();
                    let item = match iw.next() {
                        Some("ins") => BatchItem::Insert(parse_point(&mut iw, "batch ins")?),
                        Some("del") => BatchItem::Delete(parse_point(&mut iw, "batch del")?),
                        other => return Err(format!("batch item must be ins/del, got {other:?}")),
                    };
                    expect_end(&mut iw)?;
                    items.push(item);
                }
                if items.is_empty() {
                    return Err("batch with no items".to_string());
                }
                return Ok(TraceOp::Batch(items));
            }
            "query" => TraceOp::Query {
                x1: parse_num(&mut words, "x1")?,
                x2: parse_num(&mut words, "x2")?,
                k: parse_num(&mut words, "k")?,
            },
            "open" => TraceOp::CursorOpen {
                id: parse_num(&mut words, "cursor id")?,
                x1: parse_num(&mut words, "x1")?,
                x2: parse_num(&mut words, "x2")?,
                k: parse_num(&mut words, "k")?,
                page: parse_num(&mut words, "page")?,
                strict: match words.next() {
                    Some("strict") => true,
                    Some("perround") | None => false,
                    Some(other) => {
                        return Err(format!(
                            "consistency must be strict/perround, got '{other}'"
                        ))
                    }
                },
            },
            "next" => TraceOp::CursorNext {
                id: parse_num(&mut words, "cursor id")?,
            },
            "resume" => TraceOp::CursorResume {
                id: parse_num(&mut words, "cursor id")?,
            },
            "rebalance" => TraceOp::RebalanceHint,
            other => return Err(format!("unknown op '{other}'")),
        };
        expect_end(&mut words)?;
        Ok(op)
    }
}

/// A replayable operation sequence. See the module docs for the text
/// format; [`mod@crate::replay`] for the execution semantics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// The operations, replayed in order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// A trace over the given operations.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        Self { ops }
    }

    /// Number of operations (batch contents count as one op).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Parse a `.trace` file from disk.
    pub fn load(path: &Path) -> Result<Self, TraceParseError> {
        let text = std::fs::read_to_string(path).map_err(|e| TraceParseError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        text.parse()
    }

    /// Write the trace to disk in its text format (creating parent
    /// directories as needed).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_string())
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{TRACE_HEADER}")?;
        for op in &self.ops {
            writeln!(f, "{op}")?;
        }
        Ok(())
    }
}

impl FromStr for Trace {
    type Err = TraceParseError;

    fn from_str(text: &str) -> Result<Self, TraceParseError> {
        let mut lines = text.lines().enumerate();
        let header = loop {
            match lines.next() {
                None => {
                    return Err(TraceParseError {
                        line: 0,
                        message: "empty file (expected a 'topktrace v1' header)".into(),
                    })
                }
                Some((_, l)) if l.trim().is_empty() || l.trim_start().starts_with('#') => continue,
                Some((n, l)) => break (n + 1, l.trim()),
            }
        };
        if header.1 != TRACE_HEADER {
            return Err(TraceParseError {
                line: header.0,
                message: format!("bad header '{}' (expected '{TRACE_HEADER}')", header.1),
            });
        }
        let mut ops = Vec::new();
        for (n, raw) in lines {
            // Strip trailing comments, then whole-line comments and blanks.
            let line = match raw.split_once('#') {
                Some((before, _)) => before,
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            ops.push(line.parse::<TraceOp>().map_err(|message| TraceParseError {
                line: n + 1,
                message,
            })?);
        }
        Ok(Trace { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(vec![
            TraceOp::Insert(Point::new(17, 4200)),
            TraceOp::Batch(vec![
                BatchItem::Insert(Point::new(1, 10)),
                BatchItem::Insert(Point::new(2, 20)),
                BatchItem::Delete(Point::new(1, 10)),
            ]),
            TraceOp::Query {
                x1: 0,
                x2: 1000,
                k: 5,
            },
            TraceOp::CursorOpen {
                id: 0,
                x1: 0,
                x2: u64::MAX,
                k: 50,
                page: 10,
                strict: false,
            },
            TraceOp::CursorNext { id: 0 },
            TraceOp::CursorResume { id: 0 },
            TraceOp::CursorOpen {
                id: 1,
                x1: 5,
                x2: 6,
                k: 3,
                page: 1,
                strict: true,
            },
            TraceOp::RebalanceHint,
            TraceOp::Delete(Point::new(17, 4200)),
        ])
    }

    #[test]
    fn traces_round_trip_through_their_text_format() {
        let trace = sample();
        let text = trace.to_string();
        assert!(text.starts_with(TRACE_HEADER));
        let back: Trace = text.parse().unwrap();
        assert_eq!(back, trace);
        // And a second round trip is byte-identical (the format is canonical).
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn comments_blanks_and_trailing_comments_are_ignored() {
        let text = "\n# leading comment\ntopktrace v1\n\nins 1 2  # trailing\n# whole line\n  query 0 9 3\n";
        let trace: Trace = text.parse().unwrap();
        assert_eq!(
            trace.ops,
            vec![
                TraceOp::Insert(Point::new(1, 2)),
                TraceOp::Query { x1: 0, x2: 9, k: 3 },
            ]
        );
    }

    #[test]
    fn parse_errors_carry_the_line_number() {
        let err = "topktrace v1\nins 1 2\nwat 3\n"
            .parse::<Trace>()
            .unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("wat"));
        let err = "topktrace v2\n".parse::<Trace>().unwrap_err();
        assert!(err.message.contains("header"));
        let err = "topktrace v1\nins 1\n".parse::<Trace>().unwrap_err();
        assert_eq!(err.line, 2);
        let err = "topktrace v1\nbatch\n".parse::<Trace>().unwrap_err();
        assert!(err.message.contains("no items"));
        let err = "topktrace v1\nquery 1 2 3 4\n"
            .parse::<Trace>()
            .unwrap_err();
        assert!(err.message.contains("trailing"));
        let err = "topktrace v1\nopen 0 1 2 3 4 sloppy\n"
            .parse::<Trace>()
            .unwrap_err();
        assert!(err.message.contains("consistency"));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("topk-testkit-trace-test");
        let path = dir.join("sample.trace");
        let trace = sample();
        trace.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), trace);
        std::fs::remove_dir_all(&dir).ok();
    }
}
