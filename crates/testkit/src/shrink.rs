//! Automatic trace shrinking: from a failing replay to a minimal `.trace`.
//!
//! [`shrink`] is delta debugging (ddmin) over the op list, plus an
//! item-level pass over batch contents: it repeatedly deletes chunks of the
//! trace and keeps any candidate that still diverges, until no single op
//! (or batch item) can be removed. Because the replayer skips invalid ops
//! deterministically, **every subsequence of a trace is a valid trace**, so
//! the search needs no repair step.
//!
//! [`replay_or_shrink`] is the harness entry point: replay, and on
//! divergence shrink, write the minimal trace to `target/repro/<name>.trace`,
//! and panic with the divergence plus the one-line replay command — the
//! same ergonomics the stress harness's `STRESS_SEED` repro lines had, but
//! pointing at a file that is already minimal.

use std::path::{Path, PathBuf};

use crate::replay::{replay, Divergence};
use crate::topology::Topology;
use crate::trace::{Trace, TraceOp};

/// Upper bound on replays one shrink is allowed (a backstop; generated
/// traces shrink in far fewer).
const MAX_SHRINK_REPLAYS: usize = 4000;

/// The result of shrinking a failing trace.
#[derive(Debug)]
pub struct ShrinkReport {
    /// The minimal failing trace.
    pub trace: Trace,
    /// The divergence the minimal trace still produces.
    pub divergence: Divergence,
    /// Where the minimal trace was written (under `target/repro/`).
    pub path: PathBuf,
    /// The one-line replay command.
    pub repro: String,
    /// Replays the search spent.
    pub replays: usize,
}

fn fails(trace: &Trace, topology: Topology, budget: &mut usize) -> Option<Divergence> {
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    replay(trace, topology).err()
}

fn without_ops(trace: &Trace, start: usize, len: usize) -> Trace {
    let mut ops = Vec::with_capacity(trace.ops.len().saturating_sub(len));
    ops.extend_from_slice(&trace.ops[..start]);
    ops.extend_from_slice(&trace.ops[(start + len).min(trace.ops.len())..]);
    Trace::new(ops)
}

/// ddmin over the op list: returns the smallest failing trace found and the
/// divergence it produces. `budget` caps total replays.
fn ddmin_ops(
    mut current: Trace,
    mut divergence: Divergence,
    topology: Topology,
    budget: &mut usize,
) -> (Trace, Divergence) {
    let mut chunk = current.ops.len().div_ceil(2).max(1);
    while !current.ops.is_empty() {
        let mut progress = false;
        let mut start = 0;
        while start < current.ops.len() {
            let len = chunk.min(current.ops.len() - start);
            let candidate = without_ops(&current, start, len);
            if let Some(d) = fails(&candidate, topology, budget) {
                current = candidate;
                divergence = d;
                progress = true;
                // Retry the same start: the next chunk slid into place.
            } else {
                start += len;
            }
            if *budget == 0 {
                return (current, divergence);
            }
        }
        if !progress {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    (current, divergence)
}

/// One pass of batch-item minimization: try dropping each item of each
/// remaining batch.
fn shrink_batch_items(
    mut current: Trace,
    mut divergence: Divergence,
    topology: Topology,
    budget: &mut usize,
) -> (Trace, Divergence) {
    let mut op_idx = 0;
    while op_idx < current.ops.len() {
        if let TraceOp::Batch(items) = &current.ops[op_idx] {
            let mut items = items.clone();
            let mut item_idx = 0;
            while item_idx < items.len() {
                let mut fewer = items.clone();
                fewer.remove(item_idx);
                let mut candidate = current.clone();
                if fewer.is_empty() {
                    candidate.ops.remove(op_idx);
                } else {
                    candidate.ops[op_idx] = TraceOp::Batch(fewer.clone());
                }
                if let Some(d) = fails(&candidate, topology, budget) {
                    divergence = d;
                    if fewer.is_empty() {
                        current = candidate;
                        items.clear();
                        break;
                    }
                    current = candidate;
                    items = fewer;
                } else {
                    item_idx += 1;
                }
                if *budget == 0 {
                    return (current, divergence);
                }
            }
        }
        op_idx += 1;
    }
    (current, divergence)
}

thread_local! {
    /// Whether this thread is inside a shrink search (candidate-replay
    /// panics are expected and should not print).
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install — once per process — a panic hook that delegates to the
/// previous hook except on threads currently inside a shrink search.
/// Thread-scoped by design: parallel tests in the same binary keep their
/// panic messages (a process-global silent hook would swallow them).
fn install_filtering_panic_hook() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|quiet| quiet.get()) {
                previous(info);
            }
        }));
    });
}

/// Resets the quiet flag even when an assertion unwinds out of the search.
struct QuietGuard;

impl QuietGuard {
    fn engage() -> Self {
        install_filtering_panic_hook();
        QUIET_PANICS.with(|quiet| quiet.set(true));
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        QUIET_PANICS.with(|quiet| quiet.set(false));
    }
}

/// Shrink `trace` (which must diverge on `topology`) to a locally minimal
/// failing trace. Returns `None` if the trace does not actually fail.
///
/// Panicking replays are divergences too (the replayer catches them), so
/// the search silences panic output *on this thread* for its duration —
/// thousands of expected candidate panics would otherwise bury the real
/// report, while unrelated tests on other threads keep theirs.
pub fn shrink(trace: &Trace, topology: Topology) -> Option<(Trace, Divergence, usize)> {
    let mut budget = MAX_SHRINK_REPLAYS;
    let _quiet = QuietGuard::engage();
    let divergence = fails(trace, topology, &mut budget)?;
    let (current, divergence) = ddmin_ops(trace.clone(), divergence, topology, &mut budget);
    let (current, divergence) = shrink_batch_items(current, divergence, topology, &mut budget);
    // ddmin once more at single-op granularity in case item removal opened
    // further op removals.
    let (current, divergence) = ddmin_ops(current, divergence, topology, &mut budget);
    Some((current, divergence, MAX_SHRINK_REPLAYS - budget))
}

/// The directory shrunk repro traces are written to: `target/repro/` under
/// the workspace root (found by walking up from the current directory to
/// the first `Cargo.lock`; falls back to `./target/repro`).
pub fn repro_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target").join("repro");
        }
        if !dir.pop() {
            return Path::new("target").join("repro");
        }
    }
}

/// Shrink a failing trace and persist the minimal repro:
/// `target/repro/<name>.trace`, plus the one-line replay command.
pub fn shrink_to_file(trace: &Trace, topology: Topology, name: &str) -> Option<ShrinkReport> {
    let (minimal, divergence, replays) = shrink(trace, topology)?;
    let path = repro_dir().join(format!("{name}.trace"));
    minimal
        .save(&path)
        .unwrap_or_else(|e| panic!("cannot write repro trace {}: {e}", path.display()));
    let repro = format!(
        "repro: cargo run -p topk-testkit --example replay -- {} {topology}",
        path.display()
    );
    Some(ShrinkReport {
        trace: minimal,
        divergence,
        path,
        repro,
        replays,
    })
}

/// The harness entry point: replay `trace` against `topology`; on
/// divergence, shrink to `target/repro/<name>.trace` and panic with the
/// minimal divergence, the repro command and the caller's `context` (seed,
/// distribution, repro line — whatever identifies the case).
pub fn replay_or_shrink(trace: &Trace, topology: Topology, name: &str, context: &str) {
    if replay(trace, topology).is_ok() {
        return;
    }
    match shrink_to_file(trace, topology, name) {
        Some(report) => panic!(
            "{}\n  minimal trace: {} ops at {}\n  {}\n  {context}",
            report.divergence,
            report.trace.len(),
            report.path.display(),
            report.repro,
        ),
        None => {
            // The failure did not reproduce on the second replay — a flaky
            // divergence is itself a bug worth failing loudly on.
            panic!("replay diverged once but not when shrinking; {context}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::BatchItem;
    use epst::Point;

    /// A trace that "fails" iff it still contains the poison query — stand
    /// in for a real divergence so the ddmin mechanics are testable without
    /// a buggy engine.
    fn poisoned(n_ops: usize) -> Trace {
        let mut ops: Vec<TraceOp> = (0..n_ops as u64)
            .map(|i| TraceOp::Insert(Point::new(i * 3 + 1, i * 7 + 5)))
            .collect();
        ops.insert(
            n_ops / 2,
            TraceOp::Batch(vec![
                BatchItem::Insert(Point::new(900_001, 900_001)),
                BatchItem::Insert(Point::new(900_004, 900_004)),
            ]),
        );
        Trace::new(ops)
    }

    #[test]
    fn ddmin_reduces_to_the_poison() {
        // Use a synthetic failure predicate by driving ddmin directly.
        let trace = poisoned(40);
        let poison = TraceOp::Batch(vec![
            BatchItem::Insert(Point::new(900_001, 900_001)),
            BatchItem::Insert(Point::new(900_004, 900_004)),
        ]);
        // Emulate the search loop with the same chunk scheduling as
        // ddmin_ops but a synthetic predicate.
        let mut current = trace;
        let mut chunk = current.ops.len().div_ceil(2).max(1);
        let still_fails = |t: &Trace| t.ops.contains(&poison);
        while !current.ops.is_empty() {
            let mut progress = false;
            let mut start = 0;
            while start < current.ops.len() {
                let len = chunk.min(current.ops.len() - start);
                let candidate = without_ops(&current, start, len);
                if still_fails(&candidate) {
                    current = candidate;
                    progress = true;
                } else {
                    start += len;
                }
            }
            if !progress {
                if chunk == 1 {
                    break;
                }
                chunk = (chunk / 2).max(1);
            }
        }
        assert_eq!(current.ops, vec![poison]);
    }

    #[test]
    fn shrink_returns_none_for_a_passing_trace() {
        let trace = Trace::new(vec![
            TraceOp::Insert(Point::new(1, 10)),
            TraceOp::Query { x1: 0, x2: 5, k: 1 },
        ]);
        assert!(shrink(&trace, Topology::Single).is_none());
    }

    #[test]
    fn repro_dir_is_under_a_target_directory() {
        let dir = repro_dir();
        assert!(dir.ends_with(Path::new("target").join("repro")), "{dir:?}");
    }
}
