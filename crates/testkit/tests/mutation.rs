//! Mutation-testing the checker and the shrinker: a deliberately injected
//! ordering bug (the `testkit-hooks` fault-injection point in
//! `topk_core::hooks`) must be **caught** by the differential replayer and
//! the history checker, and **shrunk** to a replayable `.trace` of at most
//! 20 ops. A checker that cannot catch a planted bug verifies nothing.
//!
//! The injection flag is process-global, so all phases run inside one
//! `#[test]` in its own integration-test binary — no parallel test can
//! observe the mutated answers.

use topk_core::hooks;
use topk_testkit::{
    check, generate, replay, shrink_to_file, Recorder, Seed, Topology, Trace, TraceSpec,
};
use workload::PointDistribution;

/// Keeps the global flag from leaking if an assertion fails mid-test.
struct InjectionGuard;

impl Drop for InjectionGuard {
    fn drop(&mut self) {
        hooks::inject_ordering_bug(false);
    }
}

#[test]
fn injected_ordering_bug_is_caught_and_shrunk() {
    let _guard = InjectionGuard;
    replayer_catches_and_shrinks_the_bug();
    history_checker_catches_the_bug();
}

fn replayer_catches_and_shrinks_the_bug() {
    let seed = Seed::from_env(0xB06);
    let spec = TraceSpec {
        preload: 64,
        ops: 48,
        ..TraceSpec::new(PointDistribution::Uniform, seed.derive(1))
    };
    let trace = generate(&spec);
    let context = seed.repro("mutation");

    // Sanity: the healthy engine replays the trace clean.
    hooks::inject_ordering_bug(false);
    for topology in [Topology::Single, Topology::Concurrent, Topology::Sharded(4)] {
        replay(&trace, topology)
            .unwrap_or_else(|d| panic!("healthy engine diverged: {d}; {context}"));
    }

    hooks::inject_ordering_bug(true);
    for topology in [Topology::Single, Topology::Concurrent, Topology::Sharded(4)] {
        // Caught: the differential replayer must notice the transposition.
        assert!(
            replay(&trace, topology).is_err(),
            "{topology}: the checker missed the injected ordering bug; {context}"
        );

        // Shrunk: to a replayable minimal trace of ≤ 20 ops.
        let name = format!("mutation-{topology}");
        let report = shrink_to_file(&trace, topology, &name)
            .unwrap_or_else(|| panic!("{topology}: failure vanished while shrinking; {context}"));
        assert!(
            report.trace.len() <= 20,
            "{topology}: shrunk trace still has {} ops; {context}",
            report.trace.len()
        );
        assert!(report.path.exists(), "{topology}: repro file not written");
        assert!(report.repro.contains("--example replay"));

        // Replayable: the written file parses back and still fails under
        // the mutation, then passes once the bug is lifted.
        let minimal = Trace::load(&report.path)
            .unwrap_or_else(|e| panic!("{topology}: repro file unreadable: {e}"));
        assert_eq!(minimal, report.trace, "{topology}: repro file round trip");
        assert!(
            replay(&minimal, topology).is_err(),
            "{topology}: minimal trace no longer reproduces; {context}"
        );
        hooks::inject_ordering_bug(false);
        replay(&minimal, topology)
            .unwrap_or_else(|d| panic!("{topology}: healthy engine fails the repro: {d}"));
        hooks::inject_ordering_bug(true);
    }
    hooks::inject_ordering_bug(false);
}

fn history_checker_catches_the_bug() {
    let preload: Vec<_> = (0..64u64)
        .map(|i| epst::Point::new(i * 3 + 1, i * 7 + 5))
        .collect();
    let (_device, handle) = Topology::Concurrent.build(128);
    let recorder = Recorder::new(handle, &preload).unwrap();
    hooks::inject_ordering_bug(true);
    recorder.query(0, u64::MAX, 5).unwrap();
    recorder.insert(epst::Point::new(9_000, 90_000)).unwrap();
    recorder.query(0, u64::MAX, 5).unwrap();
    hooks::inject_ordering_bug(false);
    let history = recorder.into_history();
    let violation = check(&history).expect_err("the history checker missed the ordering bug");
    assert!(violation.detail.contains("matches no committed version"));
}
