//! Recorded concurrent histories: multiple writer threads (disjoint
//! coordinate territories, so every interleaving is valid) race reader
//! threads against one shared topology, every op is recorded with its
//! commit stamps through the `testkit-hooks`, and the checker must find a
//! witness ordering for the whole history — exact spec matching per query
//! inside its version-stamp window.

use topk_core::{UpdateBatch, UpdateOp};
use topk_testkit::{check, generate_concurrent, BatchItem, Recorder, Seed, Topology, TraceOp};

fn run(topology: Topology, seed: Seed, salt: u64) {
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    let plan = generate_concurrent(seed.derive(salt), WRITERS, 120, 80, READERS, 60);
    let (_device, handle) = topology.build(plan.preload.len() * 2);
    let recorder = Recorder::new(handle, &plan.preload)
        .unwrap_or_else(|e| panic!("{topology}: preload failed: {e}"));
    let context = format!(
        "topology={topology} seed={seed}; {}",
        seed.repro("history_concurrent")
    );

    std::thread::scope(|scope| {
        let recorder = &recorder;
        for ops in &plan.writer_ops {
            scope.spawn(move || {
                for op in ops {
                    match op {
                        TraceOp::Insert(p) => {
                            recorder
                                .insert(*p)
                                .expect("territory inserts are collision-free");
                        }
                        TraceOp::Delete(p) => {
                            assert!(
                                recorder.delete(*p).expect("delete is infallible"),
                                "a writer's own live point went missing"
                            );
                        }
                        TraceOp::Batch(items) => {
                            let batch = UpdateBatch::from_ops(items.iter().map(|i| match i {
                                BatchItem::Insert(p) => UpdateOp::Insert(*p),
                                BatchItem::Delete(p) => UpdateOp::Delete(*p),
                            }));
                            let summary =
                                recorder.apply(&batch).expect("territory batches are valid");
                            assert_eq!(summary.missing_deletes, 0);
                        }
                        other => unreachable!("writer schedules only update: {other}"),
                    }
                    std::thread::yield_now();
                }
            });
        }
        for queries in &plan.reader_queries {
            scope.spawn(move || {
                for &(x1, x2, k) in queries {
                    recorder.query(x1, x2, k).expect("reader queries are valid");
                }
            });
        }
    });

    let history = recorder.into_history();
    let report = check(&history).unwrap_or_else(|v| panic!("{v}; {context}"));
    assert_eq!(report.queries, READERS * 60, "{context}");
    assert!(report.writes > 0, "{context}");
}

#[test]
fn concurrent_histories_admit_a_witness_ordering_on_the_coarse_lock() {
    let seed = Seed::from_env(0x41C7);
    run(Topology::Concurrent, seed, 1);
}

#[test]
fn concurrent_histories_admit_a_witness_ordering_on_sharded_topologies() {
    let seed = Seed::from_env(0x41C8);
    for (salt, topology) in [(2u64, Topology::Sharded(1)), (3, Topology::Sharded(4))] {
        run(topology, seed, salt);
    }
}
