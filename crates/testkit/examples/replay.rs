//! Replay any `.trace` file against any serving topology:
//!
//! ```text
//! cargo run -p topk-testkit --example replay -- traces/epst_full_cache_carry.trace
//! cargo run -p topk-testkit --example replay -- target/repro/bug.trace sharded-4
//! ```
//!
//! With no topology argument the trace replays against all five
//! (`single`, `concurrent`, `sharded-1`, `sharded-4`, `sharded-16`).
//! Exit code 0 means every replay agreed with the sequential spec; 1 means
//! a divergence (printed) or a bad invocation.

use std::path::Path;
use std::process::ExitCode;

use topk_testkit::{replay, Topology, Trace};

fn usage() -> ExitCode {
    eprintln!("usage: replay <file.trace> [single|concurrent|sharded-<n>|all]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(file) = args.first() else {
        return usage();
    };
    let trace = match Trace::load(Path::new(file)) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let topologies: Vec<Topology> = match args.get(1).map(String::as_str) {
        None | Some("all") => Topology::ALL.to_vec(),
        Some(name) => match name.parse() {
            Ok(topology) => vec![topology],
            Err(e) => {
                eprintln!("{e}");
                return usage();
            }
        },
    };
    let mut failed = false;
    for topology in topologies {
        match replay(&trace, topology) {
            Ok(stats) => println!(
                "{file}: OK on {topology} ({} ops applied, {} skipped, {} answers checked)",
                stats.applied, stats.skipped, stats.checked_answers
            ),
            Err(divergence) => {
                eprintln!("{file}: FAILED — {divergence}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
