//! Buffer pools over page addresses.
//!
//! A pool does not hold page *contents* (those stay in their typed
//! [`BlockFile`](crate::BlockFile)); it only decides, for every access, whether
//! the page is resident in the simulated memory of `M/B` frames, and which page
//! to evict when it is not. This is sufficient — and exactly faithful — for the
//! EM cost model, where the only observable is the number of block transfers.
//!
//! Two implementations share the [`AccessOutcome`] contract
//! (see [`PoolPolicy`](crate::PoolPolicy)):
//!
//! * [`Pool`] — the exact global LRU. Recency is tracked with a monotone
//!   clock: every resident frame carries the stamp of its last access, and a
//!   `BTreeMap` keyed by stamp orders the frames from least to most recently
//!   used. A hit re-stamps its frame (`O(log f)`), an eviction pops the
//!   smallest stamp. Deterministic and oracle-checkable, but every hit
//!   *mutates* the shared stamp index, so under one mutex it serialises all
//!   reader threads — the flat `read_scaling` curve of PR 7.
//! * [`ShardedPool`] — address-hashed [`ClockPool`] shards, each behind its
//!   own cache-line-padded mutex. A hit only sets that frame's reference bit
//!   inside its own shard: no global ordering structure exists, so reader
//!   threads touching different shards never contend, and CLOCK's
//!   second-chance sweep approximates LRU well enough for the cost model's
//!   `M/B` frames of re-use (the regression suite bounds its miss rate
//!   against exact LRU across the workload distributions).

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use crate::device::PageAddr;

/// Outcome of an access, used by the device to update [`IoStats`](crate::IoStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AccessOutcome {
    /// The access missed the pool and required a physical read.
    pub miss: bool,
    /// A dirty frame had to be written back to make room.
    pub wrote_back: bool,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    dirty: bool,
    /// Last-use stamp; larger = more recently used. Stamps are unique because
    /// the clock ticks on every access.
    stamp: u64,
}

/// An exact-LRU pool with `O(log f)` accesses: a `HashMap` from address to
/// frame state plus a `BTreeMap` from (unique) last-use stamp to address that
/// yields the eviction victim as its smallest entry.
#[derive(Debug)]
pub(crate) struct Pool {
    capacity: usize,
    clock: u64,
    frames: HashMap<PageAddr, Frame>,
    by_stamp: BTreeMap<u64, PageAddr>,
}

impl Pool {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            clock: 0,
            frames: HashMap::new(),
            by_stamp: BTreeMap::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn resident(&self) -> usize {
        self.frames.len()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Touch `addr`, marking it dirty if `write`. Returns whether a physical
    /// read (miss) and/or a physical write-back happened.
    pub(crate) fn access(&mut self, addr: PageAddr, write: bool) -> AccessOutcome {
        let stamp = self.tick();
        if let Some(f) = self.frames.get_mut(&addr) {
            self.by_stamp.remove(&f.stamp);
            f.stamp = stamp;
            f.dirty |= write;
            self.by_stamp.insert(stamp, addr);
            return AccessOutcome {
                miss: false,
                wrote_back: false,
            };
        }

        let mut wrote_back = false;
        if self.frames.len() >= self.capacity {
            // Evict the least recently used frame: the smallest stamp.
            let (_, victim) = self
                .by_stamp
                .pop_first()
                .expect("a full pool has a least-recent frame");
            let evicted = self
                .frames
                .remove(&victim)
                .expect("stamp index and frame table agree");
            wrote_back = evicted.dirty;
        }

        self.frames.insert(
            addr,
            Frame {
                dirty: write,
                stamp,
            },
        );
        self.by_stamp.insert(stamp, addr);
        AccessOutcome {
            miss: true,
            wrote_back,
        }
    }

    /// Drop `addr` from the pool without writing it back (used when a page is
    /// freed; its contents no longer matter).
    pub(crate) fn discard(&mut self, addr: PageAddr) {
        if let Some(f) = self.frames.remove(&addr) {
            self.by_stamp.remove(&f.stamp);
        }
    }

    /// Write back every dirty frame, returning how many writes that took. The
    /// frames stay resident (clean).
    pub(crate) fn flush(&mut self) -> u64 {
        let mut writes = 0;
        for f in self.frames.values_mut() {
            if f.dirty {
                f.dirty = false;
                writes += 1;
            }
        }
        writes
    }

    /// Evict everything (e.g. when an experiment wants a cold cache). Dirty
    /// frames are written back and counted.
    pub(crate) fn clear(&mut self) -> u64 {
        let writes = self.frames.values().filter(|f| f.dirty).count() as u64;
        self.frames.clear();
        self.by_stamp.clear();
        writes
    }
}

/// One frame of a [`ClockPool`].
#[derive(Debug, Clone, Copy)]
struct ClockFrame {
    addr: PageAddr,
    dirty: bool,
    /// Second-chance bit: set on every hit (and on insertion), cleared by the
    /// sweeping hand. The *only* thing a hit mutates.
    referenced: bool,
}

/// A CLOCK (second-chance) approximate-LRU pool.
///
/// Frames live in a fixed ring; a hand sweeps the ring on eviction, clearing
/// reference bits until it finds an unreferenced victim. A hit sets one bit in
/// place — no ordering structure is rebalanced — which is what lets
/// [`ShardedPool`] keep its per-shard critical sections to a hash-map probe.
#[derive(Debug)]
pub(crate) struct ClockPool {
    capacity: usize,
    map: HashMap<PageAddr, usize>,
    ring: Vec<Option<ClockFrame>>,
    /// Empty ring slots. Initialised in reverse so `pop()` hands out slot 0
    /// first and the hand (starting at 0) examines the oldest insertion first.
    free: Vec<usize>,
    hand: usize,
}

impl ClockPool {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            map: HashMap::new(),
            ring: (0..capacity).map(|_| None).collect(),
            free: (0..capacity).rev().collect(),
            hand: 0,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn resident(&self) -> usize {
        self.map.len()
    }

    /// Touch `addr`, marking it dirty if `write`.
    pub(crate) fn access(&mut self, addr: PageAddr, write: bool) -> AccessOutcome {
        if let Some(&i) = self.map.get(&addr) {
            let f = self
                .ring
                .get_mut(i)
                .and_then(|s| s.as_mut())
                .expect("map and ring agree on occupied slots");
            f.referenced = true;
            f.dirty |= write;
            return AccessOutcome {
                miss: false,
                wrote_back: false,
            };
        }

        let (slot, wrote_back) = match self.free.pop() {
            Some(s) => (s, false),
            None => self.evict(),
        };
        *self
            .ring
            .get_mut(slot)
            .expect("slot indices are bounded by the ring length") = Some(ClockFrame {
            addr,
            dirty: write,
            referenced: true,
        });
        self.map.insert(addr, slot);
        AccessOutcome {
            miss: true,
            wrote_back,
        }
    }

    /// Run the hand until an unreferenced victim is found; evict it and return
    /// its slot and whether the eviction wrote back a dirty frame. Only called
    /// on a full ring, so the sweep terminates within two revolutions.
    fn evict(&mut self) -> (usize, bool) {
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            let slot = self
                .ring
                .get_mut(i)
                .expect("the hand stays within the ring");
            let f = slot
                .as_mut()
                .expect("a full ring has no empty slots to sweep");
            if f.referenced {
                f.referenced = false;
                continue;
            }
            let evicted = slot.take().expect("victim slot was just observed occupied");
            self.map.remove(&evicted.addr);
            return (i, evicted.dirty);
        }
    }

    /// Drop `addr` without writing it back (the page was freed).
    pub(crate) fn discard(&mut self, addr: PageAddr) {
        if let Some(i) = self.map.remove(&addr) {
            if let Some(s) = self.ring.get_mut(i) {
                *s = None;
            }
            self.free.push(i);
        }
    }

    /// Write back every dirty frame, returning how many writes that took.
    pub(crate) fn flush(&mut self) -> u64 {
        let mut writes = 0;
        for f in self.ring.iter_mut().filter_map(|s| s.as_mut()) {
            if f.dirty {
                f.dirty = false;
                writes += 1;
            }
        }
        writes
    }

    /// Evict everything; dirty frames are written back and counted.
    pub(crate) fn clear(&mut self) -> u64 {
        let writes = self
            .ring
            .iter()
            .filter_map(|s| s.as_ref())
            .filter(|f| f.dirty)
            .count() as u64;
        self.map.clear();
        for s in self.ring.iter_mut() {
            *s = None;
        }
        self.free = (0..self.capacity).rev().collect();
        self.hand = 0;
        writes
    }
}

/// Target minimum frames per shard: below this, splitting the pool further
/// would distort the cost model more than it buys in parallelism.
const POOL_SHARD_MIN_FRAMES: usize = 16;

/// Upper bound on the shard count; 16 uncontended mutexes already cover the
/// core counts this simulator is benchmarked on.
const POOL_SHARD_MAX: usize = 16;

/// Shard count for a pool of `frames` frames: the largest power of two `≤ 16`
/// that keeps at least [`POOL_SHARD_MIN_FRAMES`] frames per shard (so tiny
/// test pools collapse to one shard and stay oracle-checkable).
pub(crate) fn pool_shard_count(frames: usize) -> usize {
    let want = (frames / POOL_SHARD_MIN_FRAMES).clamp(1, POOL_SHARD_MAX);
    let mut n = 1;
    while n * 2 <= want {
        n *= 2;
    }
    n
}

/// One pool shard on its own cache line. The field is named `pool_shard` so
/// every acquisition audits under the `poolshard` lock class (DESIGN.md §8).
#[derive(Debug)]
#[repr(align(64))]
struct PoolShardCell {
    pool_shard: Mutex<ClockPool>,
}

/// An address-hashed collection of [`ClockPool`] shards. Each page address
/// maps to exactly one shard (by a Fibonacci hash of its file and page id), so
/// residency questions stay exact; only the *eviction order* is approximate,
/// per shard, relative to a global LRU.
#[derive(Debug)]
pub(crate) struct ShardedPool {
    shards: Box<[PoolShardCell]>,
}

impl ShardedPool {
    /// Build a sharded pool with `frames` total frames, spread evenly (the
    /// first `frames % shards` shards take the remainder).
    pub(crate) fn new(frames: usize) -> Self {
        let frames = frames.max(1);
        let n = pool_shard_count(frames);
        let shards = (0..n)
            .map(|i| {
                let capacity = frames / n + usize::from(i < frames % n);
                PoolShardCell {
                    pool_shard: Mutex::new(ClockPool::new(capacity)),
                }
            })
            .collect();
        Self { shards }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, addr: PageAddr) -> &Mutex<ClockPool> {
        let h = (((addr.file as u64) << 32) | addr.page as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // The shard count is a power of two, so masking the top bits is a
        // uniform choice.
        let i = (h >> 48) as usize & (self.shards.len() - 1);
        &self
            .shards
            .get(i)
            .expect("shard index is masked to the shard count")
            .pool_shard
    }

    pub(crate) fn access(&self, addr: PageAddr, write: bool) -> AccessOutcome {
        let pool_shard = self.shard(addr);
        pool_shard.lock().unwrap().access(addr, write)
    }

    pub(crate) fn discard(&self, addr: PageAddr) {
        let pool_shard = self.shard(addr);
        pool_shard.lock().unwrap().discard(addr)
    }

    /// Write back dirty frames shard by shard (each shard's lock is released
    /// before the next is taken; monitoring reads may interleave).
    pub(crate) fn flush(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.pool_shard.lock().unwrap().flush())
            .sum()
    }

    pub(crate) fn clear(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.pool_shard.lock().unwrap().clear())
            .sum()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.pool_shard.lock().unwrap().capacity())
            .sum()
    }

    pub(crate) fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.pool_shard.lock().unwrap().resident())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(file: u32, page: u32) -> PageAddr {
        PageAddr { file, page }
    }

    #[test]
    fn hits_after_first_access() {
        let mut p = Pool::new(4);
        assert!(p.access(addr(0, 1), false).miss);
        assert!(!p.access(addr(0, 1), false).miss);
        assert!(!p.access(addr(0, 1), true).miss);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut p = Pool::new(2);
        p.access(addr(0, 1), false);
        p.access(addr(0, 2), false);
        // Touch page 1 so page 2 becomes LRU.
        p.access(addr(0, 1), false);
        p.access(addr(0, 3), false); // evicts page 2
        assert!(
            !p.access(addr(0, 1), false).miss,
            "page 1 should be resident"
        );
        assert!(
            p.access(addr(0, 2), false).miss,
            "page 2 should have been evicted"
        );
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut p = Pool::new(1);
        p.access(addr(0, 1), true);
        let out = p.access(addr(0, 2), false);
        assert!(out.miss);
        assert!(out.wrote_back, "dirty page 1 must be written back");
        let out = p.access(addr(0, 3), false);
        assert!(out.miss);
        assert!(!out.wrote_back, "clean page 2 needs no write-back");
    }

    #[test]
    fn flush_counts_dirty_frames_once() {
        let mut p = Pool::new(8);
        p.access(addr(0, 1), true);
        p.access(addr(0, 2), true);
        p.access(addr(0, 3), false);
        assert_eq!(p.flush(), 2);
        assert_eq!(p.flush(), 0, "frames are clean after a flush");
    }

    #[test]
    fn discard_forgets_without_write() {
        let mut p = Pool::new(2);
        p.access(addr(0, 1), true);
        p.discard(addr(0, 1));
        assert_eq!(p.resident(), 0);
        assert_eq!(p.flush(), 0);
    }

    #[test]
    fn clear_reports_dirty_count() {
        let mut p = Pool::new(4);
        p.access(addr(0, 1), true);
        p.access(addr(0, 2), false);
        assert_eq!(p.clear(), 1);
        assert_eq!(p.resident(), 0);
    }

    #[test]
    fn eviction_order_under_interleaved_hits() {
        // Exact-LRU order must survive an arbitrary interleaving of hits and
        // misses: replay a trace against a reference recency list.
        let mut p = Pool::new(3);
        let mut reference: Vec<PageAddr> = Vec::new(); // most recent last
        let trace = [1u32, 2, 3, 1, 4, 2, 5, 3, 1, 1, 6, 4, 2, 7, 5, 1, 3, 3, 8];
        for &page in &trace {
            let a = addr(0, page);
            let expect_hit = reference.contains(&a);
            let expected_victim = if !expect_hit && reference.len() == 3 {
                Some(reference[0])
            } else {
                None
            };
            let out = p.access(a, false);
            assert_eq!(out.miss, !expect_hit, "page {page}");
            reference.retain(|&r| r != a);
            reference.push(a);
            if reference.len() > 3 {
                let lru = reference.remove(0);
                assert_eq!(Some(lru), expected_victim);
            }
            assert_eq!(p.resident(), reference.len());
        }
        // Final state check: exactly the reference pages are resident.
        for &r in &reference {
            assert!(!p.access(r, false).miss, "{r:?} must be resident");
        }
    }

    /// A rotation-invariant reference model of CLOCK: a deque ordered by the
    /// hand's visiting order (front = examined next). Hits set the reference
    /// bit in place; the sweep rotates referenced frames to the back with the
    /// bit cleared; the victim's replacement is pushed at the back — exactly
    /// the ring-with-moving-hand discipline, written independently.
    #[derive(Default)]
    struct ClockOracle {
        capacity: usize,
        frames: std::collections::VecDeque<(PageAddr, bool, bool)>, // (addr, dirty, referenced)
    }

    impl ClockOracle {
        fn new(capacity: usize) -> Self {
            Self {
                capacity,
                frames: Default::default(),
            }
        }

        fn access(&mut self, a: PageAddr, write: bool) -> AccessOutcome {
            if let Some(f) = self.frames.iter_mut().find(|f| f.0 == a) {
                f.1 |= write;
                f.2 = true;
                return AccessOutcome {
                    miss: false,
                    wrote_back: false,
                };
            }
            let mut wrote_back = false;
            if self.frames.len() == self.capacity {
                loop {
                    let (va, vd, vr) = self.frames.pop_front().expect("full");
                    if vr {
                        self.frames.push_back((va, vd, false));
                    } else {
                        wrote_back = vd;
                        break;
                    }
                }
            }
            self.frames.push_back((a, write, true));
            AccessOutcome {
                miss: true,
                wrote_back,
            }
        }
    }

    #[test]
    fn clock_matches_second_chance_oracle_on_random_trace() {
        let mut p = ClockPool::new(8);
        let mut oracle = ClockOracle::new(8);
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for step in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = ((x >> 33) % 24) as u32; // 24-page working set over 8 frames
            let write = (x >> 17) & 3 == 0;
            let a = addr(0, page);
            let got = p.access(a, write);
            let want = oracle.access(a, write);
            assert_eq!(got, want, "divergence at step {step} (page {page})");
            assert_eq!(p.resident(), oracle.frames.len());
        }
    }

    #[test]
    fn clock_discard_frees_a_slot_and_flush_cleans() {
        let mut p = ClockPool::new(2);
        p.access(addr(0, 1), true);
        p.access(addr(0, 2), true);
        p.discard(addr(0, 1));
        assert_eq!(p.resident(), 1);
        // The freed slot is reused without evicting page 2.
        assert!(p.access(addr(0, 3), false).miss);
        assert!(!p.access(addr(0, 2), false).miss, "page 2 stayed resident");
        assert_eq!(p.flush(), 1, "only page 2 is dirty (1 was discarded)");
        assert_eq!(p.flush(), 0);
        assert_eq!(p.clear(), 0, "clear after flush writes nothing");
        assert_eq!(p.resident(), 0);
    }

    #[test]
    fn clock_scan_misses_like_lru() {
        // A cyclic scan wider than the pool defeats CLOCK exactly as it
        // defeats LRU: every access is a miss.
        let mut p = ClockPool::new(4);
        let mut misses = 0;
        for _ in 0..3 {
            for page in 0..16 {
                if p.access(addr(0, page), false).miss {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 48);
    }

    #[test]
    fn sharded_pool_splits_frames_exactly_and_keeps_residency() {
        let p = ShardedPool::new(256);
        assert_eq!(p.shard_count(), 16);
        assert_eq!(p.capacity(), 256, "remainders are distributed, not lost");
        let p = ShardedPool::new(37); // 2 shards of 19 and 18
        assert_eq!(p.shard_count(), 2);
        assert_eq!(p.capacity(), 37);
        // Residency is exact: a page accessed once is resident regardless of
        // traffic hashed to other shards.
        assert!(p.access(addr(1, 7), false).miss);
        for page in 100..110 {
            p.access(addr(2, page), false);
        }
        assert_eq!(p.resident(), 11);
        let before = p.resident();
        assert!(!p.access(addr(1, 7), false).miss, "hit after warm access");
        assert_eq!(p.resident(), before);
        p.discard(addr(1, 7));
        assert!(p.access(addr(1, 7), false).miss, "discard evicted it");
    }

    #[test]
    fn sharded_pool_collapses_small_pools_to_one_shard() {
        assert_eq!(pool_shard_count(2), 1);
        assert_eq!(pool_shard_count(16), 1);
        assert_eq!(pool_shard_count(31), 1);
        assert_eq!(pool_shard_count(32), 2);
        assert_eq!(pool_shard_count(64), 4);
        assert_eq!(pool_shard_count(16 * 16), 16);
        assert_eq!(pool_shard_count(1 << 20), 16, "capped at 16");
        let p = ShardedPool::new(8);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.capacity(), 8);
    }

    #[test]
    fn sharded_pool_clear_counts_dirty_frames() {
        let p = ShardedPool::new(64);
        for page in 0..10 {
            p.access(addr(0, page), page % 2 == 0);
        }
        assert_eq!(p.clear(), 5);
        assert_eq!(p.resident(), 0);
        assert_eq!(p.capacity(), 64);
    }
}
