//! LRU buffer pool over page addresses.
//!
//! The pool does not hold page *contents* (those stay in their typed
//! [`BlockFile`](crate::BlockFile)); it only decides, for every access, whether
//! the page is resident in the simulated memory of `M/B` frames, and which page
//! to evict when it is not. This is sufficient — and exactly faithful — for the
//! EM cost model, where the only observable is the number of block transfers.

use std::collections::HashMap;

use crate::device::PageAddr;

/// Outcome of an access, used by the device to update [`IoStats`](crate::IoStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AccessOutcome {
    /// The access missed the pool and required a physical read.
    pub miss: bool,
    /// A dirty frame had to be written back to make room.
    pub wrote_back: bool,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    addr: PageAddr,
    dirty: bool,
    /// Last-use stamp; larger = more recently used.
    stamp: u64,
}

/// A simple exact-LRU pool. CPU cost is irrelevant in the EM model, so the
/// implementation favours clarity: a `HashMap` from address to frame slot plus a
/// linear scan for the eviction victim (bounded by the number of frames).
#[derive(Debug)]
pub(crate) struct Pool {
    capacity: usize,
    clock: u64,
    frames: Vec<Frame>,
    index: HashMap<PageAddr, usize>,
}

impl Pool {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            clock: 0,
            frames: Vec::new(),
            index: HashMap::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn resident(&self) -> usize {
        self.frames.len()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Touch `addr`, marking it dirty if `write`. Returns whether a physical
    /// read (miss) and/or a physical write-back happened.
    pub(crate) fn access(&mut self, addr: PageAddr, write: bool) -> AccessOutcome {
        let stamp = self.tick();
        if let Some(&slot) = self.index.get(&addr) {
            let f = &mut self.frames[slot];
            f.stamp = stamp;
            f.dirty |= write;
            return AccessOutcome {
                miss: false,
                wrote_back: false,
            };
        }

        let mut wrote_back = false;
        if self.frames.len() >= self.capacity {
            // Evict the least recently used frame.
            let victim = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.stamp)
                .map(|(i, _)| i)
                .expect("pool is non-empty");
            let evicted = self.frames.swap_remove(victim);
            self.index.remove(&evicted.addr);
            // `swap_remove` moved the last frame into `victim`; fix its index.
            if victim < self.frames.len() {
                let moved = self.frames[victim].addr;
                self.index.insert(moved, victim);
            }
            wrote_back = evicted.dirty;
        }

        let slot = self.frames.len();
        self.frames.push(Frame {
            addr,
            dirty: write,
            stamp,
        });
        self.index.insert(addr, slot);
        AccessOutcome {
            miss: true,
            wrote_back,
        }
    }

    /// Drop `addr` from the pool without writing it back (used when a page is
    /// freed; its contents no longer matter).
    pub(crate) fn discard(&mut self, addr: PageAddr) {
        if let Some(slot) = self.index.remove(&addr) {
            self.frames.swap_remove(slot);
            if slot < self.frames.len() {
                let moved = self.frames[slot].addr;
                self.index.insert(moved, slot);
            }
        }
    }

    /// Write back every dirty frame, returning how many writes that took. The
    /// frames stay resident (clean).
    pub(crate) fn flush(&mut self) -> u64 {
        let mut writes = 0;
        for f in &mut self.frames {
            if f.dirty {
                f.dirty = false;
                writes += 1;
            }
        }
        writes
    }

    /// Evict everything (e.g. when an experiment wants a cold cache). Dirty
    /// frames are written back and counted.
    pub(crate) fn clear(&mut self) -> u64 {
        let writes = self.frames.iter().filter(|f| f.dirty).count() as u64;
        self.frames.clear();
        self.index.clear();
        writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(file: u32, page: u32) -> PageAddr {
        PageAddr { file, page }
    }

    #[test]
    fn hits_after_first_access() {
        let mut p = Pool::new(4);
        assert!(p.access(addr(0, 1), false).miss);
        assert!(!p.access(addr(0, 1), false).miss);
        assert!(!p.access(addr(0, 1), true).miss);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut p = Pool::new(2);
        p.access(addr(0, 1), false);
        p.access(addr(0, 2), false);
        // Touch page 1 so page 2 becomes LRU.
        p.access(addr(0, 1), false);
        p.access(addr(0, 3), false); // evicts page 2
        assert!(!p.access(addr(0, 1), false).miss, "page 1 should be resident");
        assert!(p.access(addr(0, 2), false).miss, "page 2 should have been evicted");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut p = Pool::new(1);
        p.access(addr(0, 1), true);
        let out = p.access(addr(0, 2), false);
        assert!(out.miss);
        assert!(out.wrote_back, "dirty page 1 must be written back");
        let out = p.access(addr(0, 3), false);
        assert!(out.miss);
        assert!(!out.wrote_back, "clean page 2 needs no write-back");
    }

    #[test]
    fn flush_counts_dirty_frames_once() {
        let mut p = Pool::new(8);
        p.access(addr(0, 1), true);
        p.access(addr(0, 2), true);
        p.access(addr(0, 3), false);
        assert_eq!(p.flush(), 2);
        assert_eq!(p.flush(), 0, "frames are clean after a flush");
    }

    #[test]
    fn discard_forgets_without_write() {
        let mut p = Pool::new(2);
        p.access(addr(0, 1), true);
        p.discard(addr(0, 1));
        assert_eq!(p.resident(), 0);
        assert_eq!(p.flush(), 0);
    }

    #[test]
    fn clear_reports_dirty_count() {
        let mut p = Pool::new(4);
        p.access(addr(0, 1), true);
        p.access(addr(0, 2), false);
        assert_eq!(p.clear(), 1);
        assert_eq!(p.resident(), 0);
    }
}
