//! LRU buffer pool over page addresses.
//!
//! The pool does not hold page *contents* (those stay in their typed
//! [`BlockFile`](crate::BlockFile)); it only decides, for every access, whether
//! the page is resident in the simulated memory of `M/B` frames, and which page
//! to evict when it is not. This is sufficient — and exactly faithful — for the
//! EM cost model, where the only observable is the number of block transfers.
//!
//! Recency is tracked with a monotone clock: every resident frame carries the
//! stamp of its last access, and a `BTreeMap` keyed by stamp orders the frames
//! from least to most recently used. A hit re-stamps its frame (`O(log f)`),
//! and an eviction pops the smallest stamp (`O(log f)`), replacing the
//! `O(f)` linear victim scan the pool shipped with. CPU cost is outside the EM
//! model, but the pool sits on every page access of every structure and is
//! inside the device lock under concurrency, so its constant factors gate the
//! whole simulator's throughput.

use std::collections::{BTreeMap, HashMap};

use crate::device::PageAddr;

/// Outcome of an access, used by the device to update [`IoStats`](crate::IoStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AccessOutcome {
    /// The access missed the pool and required a physical read.
    pub miss: bool,
    /// A dirty frame had to be written back to make room.
    pub wrote_back: bool,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    dirty: bool,
    /// Last-use stamp; larger = more recently used. Stamps are unique because
    /// the clock ticks on every access.
    stamp: u64,
}

/// An exact-LRU pool with `O(log f)` accesses: a `HashMap` from address to
/// frame state plus a `BTreeMap` from (unique) last-use stamp to address that
/// yields the eviction victim as its smallest entry.
#[derive(Debug)]
pub(crate) struct Pool {
    capacity: usize,
    clock: u64,
    frames: HashMap<PageAddr, Frame>,
    by_stamp: BTreeMap<u64, PageAddr>,
}

impl Pool {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            clock: 0,
            frames: HashMap::new(),
            by_stamp: BTreeMap::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn resident(&self) -> usize {
        self.frames.len()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Touch `addr`, marking it dirty if `write`. Returns whether a physical
    /// read (miss) and/or a physical write-back happened.
    pub(crate) fn access(&mut self, addr: PageAddr, write: bool) -> AccessOutcome {
        let stamp = self.tick();
        if let Some(f) = self.frames.get_mut(&addr) {
            self.by_stamp.remove(&f.stamp);
            f.stamp = stamp;
            f.dirty |= write;
            self.by_stamp.insert(stamp, addr);
            return AccessOutcome {
                miss: false,
                wrote_back: false,
            };
        }

        let mut wrote_back = false;
        if self.frames.len() >= self.capacity {
            // Evict the least recently used frame: the smallest stamp.
            let (_, victim) = self
                .by_stamp
                .pop_first()
                .expect("a full pool has a least-recent frame");
            let evicted = self
                .frames
                .remove(&victim)
                .expect("stamp index and frame table agree");
            wrote_back = evicted.dirty;
        }

        self.frames.insert(
            addr,
            Frame {
                dirty: write,
                stamp,
            },
        );
        self.by_stamp.insert(stamp, addr);
        AccessOutcome {
            miss: true,
            wrote_back,
        }
    }

    /// Drop `addr` from the pool without writing it back (used when a page is
    /// freed; its contents no longer matter).
    pub(crate) fn discard(&mut self, addr: PageAddr) {
        if let Some(f) = self.frames.remove(&addr) {
            self.by_stamp.remove(&f.stamp);
        }
    }

    /// Write back every dirty frame, returning how many writes that took. The
    /// frames stay resident (clean).
    pub(crate) fn flush(&mut self) -> u64 {
        let mut writes = 0;
        for f in self.frames.values_mut() {
            if f.dirty {
                f.dirty = false;
                writes += 1;
            }
        }
        writes
    }

    /// Evict everything (e.g. when an experiment wants a cold cache). Dirty
    /// frames are written back and counted.
    pub(crate) fn clear(&mut self) -> u64 {
        let writes = self.frames.values().filter(|f| f.dirty).count() as u64;
        self.frames.clear();
        self.by_stamp.clear();
        writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(file: u32, page: u32) -> PageAddr {
        PageAddr { file, page }
    }

    #[test]
    fn hits_after_first_access() {
        let mut p = Pool::new(4);
        assert!(p.access(addr(0, 1), false).miss);
        assert!(!p.access(addr(0, 1), false).miss);
        assert!(!p.access(addr(0, 1), true).miss);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut p = Pool::new(2);
        p.access(addr(0, 1), false);
        p.access(addr(0, 2), false);
        // Touch page 1 so page 2 becomes LRU.
        p.access(addr(0, 1), false);
        p.access(addr(0, 3), false); // evicts page 2
        assert!(
            !p.access(addr(0, 1), false).miss,
            "page 1 should be resident"
        );
        assert!(
            p.access(addr(0, 2), false).miss,
            "page 2 should have been evicted"
        );
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut p = Pool::new(1);
        p.access(addr(0, 1), true);
        let out = p.access(addr(0, 2), false);
        assert!(out.miss);
        assert!(out.wrote_back, "dirty page 1 must be written back");
        let out = p.access(addr(0, 3), false);
        assert!(out.miss);
        assert!(!out.wrote_back, "clean page 2 needs no write-back");
    }

    #[test]
    fn flush_counts_dirty_frames_once() {
        let mut p = Pool::new(8);
        p.access(addr(0, 1), true);
        p.access(addr(0, 2), true);
        p.access(addr(0, 3), false);
        assert_eq!(p.flush(), 2);
        assert_eq!(p.flush(), 0, "frames are clean after a flush");
    }

    #[test]
    fn discard_forgets_without_write() {
        let mut p = Pool::new(2);
        p.access(addr(0, 1), true);
        p.discard(addr(0, 1));
        assert_eq!(p.resident(), 0);
        assert_eq!(p.flush(), 0);
    }

    #[test]
    fn clear_reports_dirty_count() {
        let mut p = Pool::new(4);
        p.access(addr(0, 1), true);
        p.access(addr(0, 2), false);
        assert_eq!(p.clear(), 1);
        assert_eq!(p.resident(), 0);
    }

    #[test]
    fn eviction_order_under_interleaved_hits() {
        // Exact-LRU order must survive an arbitrary interleaving of hits and
        // misses: replay a trace against a reference recency list.
        let mut p = Pool::new(3);
        let mut reference: Vec<PageAddr> = Vec::new(); // most recent last
        let trace = [1u32, 2, 3, 1, 4, 2, 5, 3, 1, 1, 6, 4, 2, 7, 5, 1, 3, 3, 8];
        for &page in &trace {
            let a = addr(0, page);
            let expect_hit = reference.contains(&a);
            let expected_victim = if !expect_hit && reference.len() == 3 {
                Some(reference[0])
            } else {
                None
            };
            let out = p.access(a, false);
            assert_eq!(out.miss, !expect_hit, "page {page}");
            reference.retain(|&r| r != a);
            reference.push(a);
            if reference.len() > 3 {
                let lru = reference.remove(0);
                assert_eq!(Some(lru), expected_victim);
            }
            assert_eq!(p.resident(), reference.len());
        }
        // Final state check: exactly the reference pages are resident.
        for &r in &reference {
            assert!(!p.access(r, false).miss, "{r:?} must be resident");
        }
    }
}
