//! # emsim — an external-memory model simulator
//!
//! This crate implements the cost model of Aggarwal & Vitter's external-memory
//! (EM) model, which is the model every bound in Tao's *"A Dynamic I/O-Efficient
//! Structure for One-Dimensional Top-k Range Reporting"* (PODS 2014) is stated in:
//!
//! * a machine has `M` words of memory and an unbounded disk formatted into blocks
//!   of `B` words;
//! * an I/O transfers one block between disk and memory;
//! * the cost of an algorithm is the number of I/Os it performs — CPU work is free;
//! * the space of a structure is the number of blocks it occupies.
//!
//! Data structures built on top of this crate store their nodes as typed *pages*
//! inside [`BlockFile`]s attached to a shared [`Device`]. Every page access goes
//! through the device's buffer pool of `M/B` frames: an access
//! that misses the pool costs one read I/O, and evicting a dirty frame costs one
//! write I/O. The pool's replacement policy is a [`PoolPolicy`]: address-hashed
//! CLOCK shards by default (so concurrent readers don't serialise on one pool
//! mutex), or a deterministic exact LRU for I/O-cost bound tests. The resulting
//! counters ([`IoStats`]) are exactly the quantity the
//! paper's theorems bound, so experiments can check the claimed `O(log_B n + k/B)`
//! query and `O(log_B n)` amortized update costs directly.
//!
//! Pages are plain Rust values that report their size in words via the [`Page`]
//! trait; a page larger than a block is a bug in the data structure layout and is
//! recorded in [`IoStats::capacity_violations`] (and panics in debug builds).
//!
//! ```
//! use emsim::{Device, EmConfig, Page, BlockFile};
//!
//! struct Node { keys: Vec<u64> }
//! impl Page for Node {
//!     fn words(&self) -> usize { 1 + self.keys.len() }
//! }
//!
//! let dev = Device::new(EmConfig::new(64, 4 * 64));
//! let file: BlockFile<Node> = dev.open_file("btree-nodes");
//! let id = file.alloc(Node { keys: vec![1, 2, 3] });
//! let sum: u64 = file.with(id, |n| n.keys.iter().sum());
//! assert_eq!(sum, 6);
//! assert!(dev.stats().total_ios() >= 1);
//! ```

mod backend;
mod config;
mod device;
mod file;
mod page;
mod pool;
mod stats;

pub use backend::{
    BackendError, BackendResult, DurableStats, FaultPlan, FileBackend, IoOutcome, IoRequest,
    KillPhase, RamBackend, StorageBackend, ThreadPoolBackend, Ticket,
};
pub use config::{BackendKind, EmConfig, PoolPolicy};
pub use device::{Device, FileId, PageAddr};
pub use file::{BlockFile, PageId};
pub use page::{encode_page, entries_per_block, entries_words, Page, PersistPage};
pub use stats::{IoDelta, IoSnapshot, IoStats};

/// Number of bytes in a machine word of the EM model as used throughout this
/// reproduction (one word = one `u64`).
pub const WORD_BYTES: usize = 8;

/// Double-checked lookup in a lock-protected directory map: return the value
/// for `key`, creating it with `make` under the write lock if absent.
///
/// The structure crates keep directories (`base node → page id`) behind
/// `RwLock<HashMap<…>>`; this is the one place their get-or-create protocol
/// lives, so racing callers always agree on a single value instead of leaking
/// whatever `make` allocated. `make` runs while the write lock is held.
pub fn dir_get_or_insert<K, V, F>(
    map: &std::sync::RwLock<std::collections::HashMap<K, V>>,
    key: K,
    make: F,
) -> V
where
    K: std::hash::Hash + Eq + Copy,
    V: Copy,
    F: FnOnce() -> V,
{
    if let Some(&v) = map.read().unwrap().get(&key) {
        return v;
    }
    let mut m = map.write().unwrap();
    if let Some(&v) = m.get(&key) {
        return v;
    }
    let v = make();
    m.insert(key, v);
    v
}

/// `ceil(a / b)` for block/word arithmetic; `b` must be non-zero.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    debug_assert!(b > 0, "div_ceil by zero");
    a.div_ceil(b)
}

/// `max(1, floor(log_b(x)))` as used by the paper's `lg_b` convention
/// (`lg_b x := max{1, log_b x}`).
pub fn log_b(b: usize, x: usize) -> f64 {
    if b < 2 || x < 2 {
        return 1.0;
    }
    let v = (x as f64).ln() / (b as f64).ln();
    if v < 1.0 {
        1.0
    } else {
        v
    }
}

/// `max(1, floor(log2(x)))`, the paper's `lg x` convention.
pub fn lg(x: usize) -> u32 {
    if x < 2 {
        1
    } else {
        usize::BITS - 1 - x.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_ceil_basics() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
        assert_eq!(div_ceil(8, 4), 2);
    }

    #[test]
    fn lg_follows_paper_convention() {
        // lg x = max{1, log2 x}
        assert_eq!(lg(0), 1);
        assert_eq!(lg(1), 1);
        assert_eq!(lg(2), 1);
        assert_eq!(lg(3), 1);
        assert_eq!(lg(4), 2);
        assert_eq!(lg(1024), 10);
        assert_eq!(lg(1 << 20), 20);
    }

    #[test]
    fn log_b_is_at_least_one() {
        assert!(log_b(1024, 4) >= 1.0);
        assert!((log_b(2, 1024) - 10.0).abs() < 1e-9);
        assert!((log_b(32, 32 * 32) - 2.0).abs() < 1e-9);
    }
}
