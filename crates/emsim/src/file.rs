//! Typed block files: collections of pages of one node type sharing the
//! device's buffer pool and counters.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

use crate::device::{Device, FileId, PageAddr};
use crate::page::Page;

/// Identifier of a page within a [`BlockFile`]. Page ids are stable for the
/// lifetime of the page (until [`BlockFile::free`]) and may be stored inside
/// other pages as "child pointers".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// A sentinel id that is never allocated; useful for "null pointer" slots
    /// inside fixed-layout pages.
    pub const NULL: PageId = PageId(u32::MAX);

    /// Whether this id is the null sentinel.
    pub fn is_null(&self) -> bool {
        *self == Self::NULL
    }
}

type Slot<P> = Rc<RefCell<Option<P>>>;

/// A file of pages of type `P` on a [`Device`].
///
/// Every [`with`](BlockFile::with) / [`with_mut`](BlockFile::with_mut) call is a
/// logical page access charged through the device's buffer pool. Accessing a
/// page therefore costs one read I/O the first time (and after eviction), and is
/// free while the page stays resident — exactly the EM model.
#[derive(Debug)]
pub struct BlockFile<P> {
    device: Device,
    file_id: FileId,
    slots: RefCell<Vec<Slot<P>>>,
    free_list: RefCell<Vec<u32>>,
    _marker: PhantomData<P>,
}

impl<P: Page> BlockFile<P> {
    pub(crate) fn new(device: Device, file_id: FileId) -> Self {
        Self {
            device,
            file_id,
            slots: RefCell::new(Vec::new()),
            free_list: RefCell::new(Vec::new()),
            _marker: PhantomData,
        }
    }

    /// The file's identifier on its device.
    pub fn file_id(&self) -> FileId {
        self.file_id
    }

    /// The device this file lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    fn addr(&self, id: PageId) -> PageAddr {
        PageAddr {
            file: self.file_id,
            page: id.0,
        }
    }

    fn slot(&self, id: PageId) -> Slot<P> {
        let slots = self.slots.borrow();
        let slot = slots
            .get(id.0 as usize)
            .unwrap_or_else(|| panic!("page {:?} out of range in file {}", id, self.file_id))
            .clone();
        slot
    }

    fn check_capacity(&self, page: &P) {
        let words = page.words();
        if words > self.device.block_words() {
            self.device.record_capacity_violation(words);
        }
    }

    /// Allocate a new page holding `page`, charging one write access.
    pub fn alloc(&self, page: P) -> PageId {
        self.check_capacity(&page);
        let id = if let Some(recycled) = self.free_list.borrow_mut().pop() {
            let slots = self.slots.borrow();
            *slots[recycled as usize].borrow_mut() = Some(page);
            PageId(recycled)
        } else {
            let mut slots = self.slots.borrow_mut();
            let idx = slots.len() as u32;
            slots.push(Rc::new(RefCell::new(Some(page))));
            PageId(idx)
        };
        self.device.record_alloc(self.file_id);
        self.device.record_access(self.addr(id), true);
        id
    }

    /// Free a page. Its id may later be recycled by `alloc`.
    pub fn free(&self, id: PageId) {
        let slot = self.slot(id);
        let was = slot.borrow_mut().take();
        assert!(was.is_some(), "double free of page {:?}", id);
        self.free_list.borrow_mut().push(id.0);
        self.device.record_free(self.addr(id));
    }

    /// Whether `id` refers to a live page.
    pub fn is_live(&self, id: PageId) -> bool {
        if id.is_null() {
            return false;
        }
        let slots = self.slots.borrow();
        slots
            .get(id.0 as usize)
            .map(|s| s.borrow().is_some())
            .unwrap_or(false)
    }

    /// Read access to a page: charges one logical access (a physical read if
    /// the page is not resident).
    pub fn with<R>(&self, id: PageId, f: impl FnOnce(&P) -> R) -> R {
        self.device.record_access(self.addr(id), false);
        let slot = self.slot(id);
        let guard = slot.borrow();
        let page = guard
            .as_ref()
            .unwrap_or_else(|| panic!("access to freed page {:?} in file {}", id, self.file_id));
        f(page)
    }

    /// Write access to a page: charges one logical access and marks the page
    /// dirty (a physical write happens when it is evicted or flushed).
    pub fn with_mut<R>(&self, id: PageId, f: impl FnOnce(&mut P) -> R) -> R {
        self.device.record_access(self.addr(id), true);
        let slot = self.slot(id);
        let mut guard = slot.borrow_mut();
        let page = guard
            .as_mut()
            .unwrap_or_else(|| panic!("access to freed page {:?} in file {}", id, self.file_id));
        let r = f(page);
        let words = page.words();
        if words > self.device.block_words() {
            drop(guard);
            self.device.record_capacity_violation(words);
        }
        r
    }

    /// Convenience: clone the page contents out (still one read access).
    pub fn get(&self, id: PageId) -> P
    where
        P: Clone,
    {
        self.with(id, |p| p.clone())
    }

    /// Replace the contents of a page (one write access).
    pub fn put(&self, id: PageId, page: P) {
        self.check_capacity(&page);
        self.with_mut(id, |slot| *slot = page);
    }

    /// Number of live pages in this file.
    pub fn live_pages(&self) -> usize {
        let slots = self.slots.borrow();
        slots.iter().filter(|s| s.borrow().is_some()).count()
    }

    /// Ids of all live pages (mainly for debugging and invariant checks).
    pub fn live_ids(&self) -> Vec<PageId> {
        let slots = self.slots.borrow();
        slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.borrow().is_some())
            .map(|(i, _)| PageId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmConfig;

    #[derive(Clone, Debug, PartialEq)]
    struct Node {
        vals: Vec<u64>,
    }
    impl Page for Node {
        fn words(&self) -> usize {
            1 + self.vals.len()
        }
    }

    fn device() -> Device {
        Device::new(EmConfig::small())
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let id = f.alloc(Node { vals: vec![1, 2] });
        f.with_mut(id, |n| n.vals.push(3));
        assert_eq!(f.get(id).vals, vec![1, 2, 3]);
        assert_eq!(f.live_pages(), 1);
    }

    #[test]
    fn free_then_realloc_recycles_ids() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let a = f.alloc(Node { vals: vec![] });
        let b = f.alloc(Node { vals: vec![] });
        f.free(a);
        assert!(!f.is_live(a));
        assert!(f.is_live(b));
        let c = f.alloc(Node { vals: vec![9] });
        assert_eq!(c, a, "freed id is recycled");
        assert_eq!(f.get(c).vals, vec![9]);
    }

    #[test]
    #[should_panic(expected = "access to freed page")]
    fn access_after_free_panics() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let a = f.alloc(Node { vals: vec![] });
        f.free(a);
        f.with(a, |_| ());
    }

    #[test]
    fn null_page_id_is_never_live() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        assert!(!f.is_live(PageId::NULL));
        assert!(PageId::NULL.is_null());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn oversized_page_counts_violation() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let huge = Node {
            vals: vec![0; 1000],
        };
        let _ = f.alloc(huge);
        assert!(dev.stats().capacity_violations > 0);
    }

    #[test]
    fn live_ids_reports_current_pages() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let a = f.alloc(Node { vals: vec![] });
        let b = f.alloc(Node { vals: vec![] });
        f.free(a);
        assert_eq!(f.live_ids(), vec![b]);
    }
}
