//! Typed block files: collections of pages of one node type sharing the
//! device's buffer pool and counters.

use std::marker::PhantomData;
use std::sync::{Arc, Mutex, RwLock};

use crate::device::{Device, FileId, PageAddr};
use crate::page::{encode_page, Page, PersistPage};

/// Identifier of a page within a [`BlockFile`]. Page ids are stable for the
/// lifetime of the page (until [`BlockFile::free`]) and may be stored inside
/// other pages as "child pointers".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// A sentinel id that is never allocated; useful for "null pointer" slots
    /// inside fixed-layout pages.
    pub const NULL: PageId = PageId(u32::MAX);

    /// Whether this id is the null sentinel.
    pub fn is_null(&self) -> bool {
        *self == Self::NULL
    }
}

type Slot<P> = Arc<RwLock<Option<P>>>;

/// A file of pages of type `P` on a [`Device`].
///
/// Every [`with`](BlockFile::with) / [`with_mut`](BlockFile::with_mut) call is a
/// logical page access charged through the device's buffer pool. Accessing a
/// page therefore costs one read I/O the first time (and after eviction), and is
/// free while the page stays resident — exactly the EM model.
///
/// Thread safety: a `BlockFile<P>` is `Send + Sync` whenever `P` is. The slot
/// table grows under a `RwLock`, each page sits behind its own `RwLock` (so
/// `with` on distinct pages — and concurrent `with` on the same page — never
/// serialise on page contents), and the free list has a `Mutex`. Concurrent
/// `with_mut` calls to the *same* page are mutually exclusive but their
/// interleaving is the caller's responsibility, as is the torn-structure
/// problem of multi-page operations — see `topk_core::ConcurrentTopK` and
/// DESIGN.md §4 for the structure-level locking that builds on this.
#[derive(Debug)]
pub struct BlockFile<P> {
    device: Device,
    file_id: FileId,
    slots: RwLock<Vec<Slot<P>>>,
    free_list: Mutex<Vec<u32>>,
    /// Durable write-through: set for files opened via
    /// [`Device::open_durable_file`], `None` for plain simulated files.
    /// Every mutation (`alloc`/`with_mut`/`put`/`free`) forwards the encoded
    /// page image to the device's backend.
    persist: Option<fn(&P) -> Vec<u64>>,
    _marker: PhantomData<P>,
}

impl<P: PersistPage> BlockFile<P> {
    /// Rebuild a durable file from its recovered pages. Missing page indices
    /// become free slots so recycled ids line up with the pre-crash layout.
    pub(crate) fn restored(device: Device, file_id: FileId, pages: Vec<(u32, P)>) -> Self {
        let len = pages
            .iter()
            .map(|(i, _)| *i as usize + 1)
            .max()
            .unwrap_or(0);
        let mut slots: Vec<Slot<P>> = (0..len).map(|_| Arc::new(RwLock::new(None))).collect();
        for (i, p) in pages {
            if let Some(s) = slots.get_mut(i as usize) {
                *s = Arc::new(RwLock::new(Some(p)));
            }
        }
        let free: Vec<u32> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.read().unwrap().is_none())
            .map(|(i, _)| i as u32)
            .collect();
        Self {
            device,
            file_id,
            slots: RwLock::new(slots),
            free_list: Mutex::new(free),
            persist: Some(encode_page::<P>),
            _marker: PhantomData,
        }
    }
}

impl<P: Page> BlockFile<P> {
    pub(crate) fn new(device: Device, file_id: FileId) -> Self {
        Self {
            device,
            file_id,
            slots: RwLock::new(Vec::new()),
            free_list: Mutex::new(Vec::new()),
            persist: None,
            _marker: PhantomData,
        }
    }

    /// The file's identifier on its device.
    pub fn file_id(&self) -> FileId {
        self.file_id
    }

    /// The device this file lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    fn addr(&self, id: PageId) -> PageAddr {
        PageAddr {
            file: self.file_id,
            page: id.0,
        }
    }

    fn slot(&self, id: PageId) -> Slot<P> {
        let slots = self.slots.read().unwrap();
        slots
            .get(id.0 as usize)
            // audit: allow(panic_path, reason = "out-of-range PageId means a caller bug or corruption; fail fast with the id")
            .unwrap_or_else(|| panic!("page {:?} out of range in file {}", id, self.file_id))
            .clone()
    }

    fn check_capacity(&self, page: &P) {
        let words = page.words();
        if words > self.device.block_words() {
            self.device.record_capacity_violation(words);
        }
    }

    /// Allocate a new page holding `page`, charging one write access.
    pub fn alloc(&self, page: P) -> PageId {
        self.check_capacity(&page);
        let image = self.persist.map(|enc| enc(&page));
        // Pop outside the match so the free-list lock is released before any
        // slot lock is taken (lock order: free_list and slot locks never nest).
        let recycled = self.free_list.lock().unwrap().pop();
        let id = match recycled {
            Some(r) => {
                let slot = self.slot(PageId(r));
                *slot.write().unwrap() = Some(page);
                PageId(r)
            }
            None => {
                let mut slots = self.slots.write().unwrap();
                let idx = slots.len() as u32;
                slots.push(Arc::new(RwLock::new(Some(page))));
                PageId(idx)
            }
        };
        self.device.record_alloc(self.file_id);
        self.device.record_access(self.addr(id), true);
        if let Some(words) = image {
            self.device.backend_put(self.addr(id), &words);
        }
        id
    }

    /// Free a page. Its id may later be recycled by `alloc`.
    pub fn free(&self, id: PageId) {
        let slot = self.slot(id);
        let was = slot.write().unwrap().take();
        assert!(was.is_some(), "double free of page {:?}", id);
        // Discard from the pool *before* publishing the id for reuse: once the
        // id is on the free list a racing `alloc` may recycle it, and a
        // delayed discard would evict the recycler's freshly written page,
        // skewing the dirty write-back accounting.
        self.device.record_free(self.addr(id));
        if self.persist.is_some() {
            self.device.backend_drop(self.addr(id));
        }
        self.free_list.lock().unwrap().push(id.0);
    }

    /// Whether `id` refers to a live page.
    pub fn is_live(&self, id: PageId) -> bool {
        if id.is_null() {
            return false;
        }
        let slots = self.slots.read().unwrap();
        slots
            .get(id.0 as usize)
            .map(|s| s.read().unwrap().is_some())
            .unwrap_or(false)
    }

    /// Read access to a page: charges one logical access (a physical read if
    /// the page is not resident).
    pub fn with<R>(&self, id: PageId, f: impl FnOnce(&P) -> R) -> R {
        self.device.record_access(self.addr(id), false);
        let slot = self.slot(id);
        let guard = slot.read().unwrap();
        let page = guard
            .as_ref()
            // audit: allow(panic_path, reason = "use-after-free of a page is a caller bug; fail fast with the id")
            .unwrap_or_else(|| panic!("access to freed page {:?} in file {}", id, self.file_id));
        f(page)
    }

    /// Write access to a page: charges one logical access and marks the page
    /// dirty (a physical write happens when it is evicted or flushed).
    pub fn with_mut<R>(&self, id: PageId, f: impl FnOnce(&mut P) -> R) -> R {
        self.device.record_access(self.addr(id), true);
        let slot = self.slot(id);
        let mut guard = slot.write().unwrap();
        let page = guard
            .as_mut()
            // audit: allow(panic_path, reason = "use-after-free of a page is a caller bug; fail fast with the id")
            .unwrap_or_else(|| panic!("access to freed page {:?} in file {}", id, self.file_id));
        let r = f(page);
        let words = page.words();
        let image = self.persist.map(|enc| enc(page));
        drop(guard);
        if words > self.device.block_words() {
            self.device.record_capacity_violation(words);
        }
        if let Some(words) = image {
            self.device.backend_put(self.addr(id), &words);
        }
        r
    }

    /// Convenience: clone the page contents out (still one read access).
    pub fn get(&self, id: PageId) -> P
    where
        P: Clone,
    {
        self.with(id, |p| p.clone())
    }

    /// Replace the contents of a page (one write access).
    pub fn put(&self, id: PageId, page: P) {
        self.check_capacity(&page);
        self.with_mut(id, |slot| *slot = page);
    }

    /// Number of live pages in this file.
    pub fn live_pages(&self) -> usize {
        let slots = self.slots.read().unwrap();
        slots.iter().filter(|s| s.read().unwrap().is_some()).count()
    }

    /// Ids of all live pages (mainly for debugging and invariant checks).
    pub fn live_ids(&self) -> Vec<PageId> {
        let slots = self.slots.read().unwrap();
        slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.read().unwrap().is_some())
            .map(|(i, _)| PageId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmConfig;

    #[derive(Clone, Debug, PartialEq)]
    struct Node {
        vals: Vec<u64>,
    }
    impl Page for Node {
        fn words(&self) -> usize {
            1 + self.vals.len()
        }
    }

    fn device() -> Device {
        Device::new(EmConfig::small())
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let id = f.alloc(Node { vals: vec![1, 2] });
        f.with_mut(id, |n| n.vals.push(3));
        assert_eq!(f.get(id).vals, vec![1, 2, 3]);
        assert_eq!(f.live_pages(), 1);
    }

    #[test]
    fn free_then_realloc_recycles_ids() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let a = f.alloc(Node { vals: vec![] });
        let b = f.alloc(Node { vals: vec![] });
        f.free(a);
        assert!(!f.is_live(a));
        assert!(f.is_live(b));
        let c = f.alloc(Node { vals: vec![9] });
        assert_eq!(c, a, "freed id is recycled");
        assert_eq!(f.get(c).vals, vec![9]);
    }

    #[test]
    #[should_panic(expected = "access to freed page")]
    fn access_after_free_panics() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let a = f.alloc(Node { vals: vec![] });
        f.free(a);
        f.with(a, |_| ());
    }

    #[test]
    fn null_page_id_is_never_live() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        assert!(!f.is_live(PageId::NULL));
        assert!(PageId::NULL.is_null());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn oversized_page_counts_violation() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let huge = Node {
            vals: vec![0; 1000],
        };
        let _ = f.alloc(huge);
        assert!(dev.stats().capacity_violations > 0);
    }

    #[test]
    fn live_ids_reports_current_pages() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let a = f.alloc(Node { vals: vec![] });
        let b = f.alloc(Node { vals: vec![] });
        f.free(a);
        assert_eq!(f.live_ids(), vec![b]);
    }

    #[test]
    fn concurrent_alloc_free_and_access_stay_consistent() {
        let dev = device();
        let f: BlockFile<Node> = dev.open_file("nodes");
        let keep: Vec<PageId> = (0..32).map(|i| f.alloc(Node { vals: vec![i] })).collect();
        std::thread::scope(|scope| {
            // Churners allocate and free private pages; readers hammer the
            // stable ones; a writer mutates one shared page.
            for _ in 0..2 {
                let f = &f;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let id = f.alloc(Node { vals: vec![i] });
                        f.with(id, |n| assert_eq!(n.vals, vec![i]));
                        f.free(id);
                    }
                });
            }
            for t in 0..4 {
                let f = &f;
                let keep = &keep;
                scope.spawn(move || {
                    for i in 0..2_000usize {
                        let id = keep[(i * 5 + t) % keep.len()];
                        f.with(id, |n| assert_eq!(n.vals.len(), 1));
                    }
                });
            }
            let f = &f;
            let shared = keep[0];
            scope.spawn(move || {
                for _ in 0..500 {
                    f.with_mut(shared, |n| n.vals[0] = n.vals[0].wrapping_add(1));
                }
            });
        });
        assert_eq!(f.live_pages(), 32, "churned pages must all be freed again");
        let s = dev.stats();
        assert_eq!(s.allocs - s.frees, 32);
        assert_eq!(dev.space_blocks(), 32);
    }
}
