//! I/O accounting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One counter on its own cache line. The stats block sits on every
/// simulated I/O of every thread; packed `AtomicU64`s would share lines, so
/// a reader thread bumping `reads` and a writer thread bumping `writes`
/// would ping-pong the same line between cores on every page access (false
/// sharing). 64 bytes covers the destructive-interference granularity of
/// x86-64 and most aarch64 cores.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct PaddedCounter(AtomicU64);

impl std::ops::Deref for PaddedCounter {
    type Target = AtomicU64;

    fn deref(&self) -> &AtomicU64 {
        &self.0
    }
}

/// The device-internal, thread-safe form of the counters. Every field is an
/// independent atomic updated with relaxed ordering: concurrent increments are
/// never lost (each is a read-modify-write), which is the property the
/// concurrent tests assert; cross-counter snapshots taken while other threads
/// are mid-operation may mix adjacent operations, which is inherent to any
/// monitoring read and harmless for the EM cost accounting. Each counter is
/// padded to its own cache line ([`PaddedCounter`]) so the hottest pair —
/// `logical` on every access, `reads` on every miss — do not false-share.
#[derive(Debug, Default)]
pub(crate) struct AtomicIoStats {
    pub(crate) reads: PaddedCounter,
    pub(crate) writes: PaddedCounter,
    pub(crate) logical: PaddedCounter,
    pub(crate) allocs: PaddedCounter,
    pub(crate) frees: PaddedCounter,
    pub(crate) capacity_violations: PaddedCounter,
}

impl AtomicIoStats {
    pub(crate) fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            logical: self.logical.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            capacity_violations: self.capacity_violations.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.logical.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
        self.capacity_violations.store(0, Ordering::Relaxed);
    }
}

/// Running I/O counters of a [`Device`](crate::Device).
///
/// `reads` and `writes` are *physical* block transfers (buffer-pool misses and
/// dirty evictions / flushes). `logical` counts every page access regardless of
/// whether it hit the pool; it is useful to sanity-check that the pool is in fact
/// absorbing repeated accesses.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Physical block reads (pool misses).
    pub reads: u64,
    /// Physical block writes (dirty evictions and explicit flushes).
    pub writes: u64,
    /// Logical page accesses (hits + misses).
    pub logical: u64,
    /// Pages allocated over the device lifetime.
    pub allocs: u64,
    /// Pages freed over the device lifetime.
    pub frees: u64,
    /// Number of times a page exceeded the block capacity `B` when written.
    /// Any non-zero value indicates a layout bug in a data structure.
    pub capacity_violations: u64,
}

impl IoStats {
    /// Total physical I/Os (`reads + writes`).
    pub fn total_ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of logical accesses served from the buffer pool, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.logical == 0 {
            return 1.0;
        }
        1.0 - (self.reads as f64 / self.logical as f64)
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} total={} logical={} hit_rate={:.3}",
            self.reads,
            self.writes,
            self.total_ios(),
            self.logical,
            self.hit_rate()
        )
    }
}

/// A point-in-time copy of the counters, used to measure a single operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot(pub IoStats);

/// The difference between two snapshots: the I/O cost of the work done in
/// between.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoDelta {
    /// Physical reads performed.
    pub reads: u64,
    /// Physical writes performed.
    pub writes: u64,
    /// Logical accesses performed.
    pub logical: u64,
}

impl IoDelta {
    /// Total physical I/Os in the interval.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Element-wise sum, useful when aggregating per-operation costs.
    pub fn add(&self, other: &IoDelta) -> IoDelta {
        IoDelta {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            logical: self.logical + other.logical,
        }
    }
}

impl IoSnapshot {
    /// I/Os performed since this snapshot was taken, given the current stats.
    pub fn delta(&self, now: &IoStats) -> IoDelta {
        IoDelta {
            reads: now.reads.saturating_sub(self.0.reads),
            writes: now.writes.saturating_sub(self.0.writes),
            logical: now.logical.saturating_sub(self.0.logical),
        }
    }
}

impl fmt::Display for IoDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} total={}",
            self.reads,
            self.writes,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_occupy_disjoint_cache_lines() {
        assert!(std::mem::align_of::<PaddedCounter>() >= 64);
        assert!(std::mem::size_of::<PaddedCounter>() >= 64);
        // Six counters, each on its own line.
        assert!(std::mem::size_of::<AtomicIoStats>() >= 6 * 64);
    }

    #[test]
    fn delta_subtracts() {
        let before = IoSnapshot(IoStats {
            reads: 10,
            writes: 5,
            logical: 100,
            ..Default::default()
        });
        let now = IoStats {
            reads: 14,
            writes: 6,
            logical: 120,
            ..Default::default()
        };
        let d = before.delta(&now);
        assert_eq!(d.reads, 4);
        assert_eq!(d.writes, 1);
        assert_eq!(d.logical, 20);
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut s = IoStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        s.logical = 10;
        s.reads = 10;
        assert_eq!(s.hit_rate(), 0.0);
        s.reads = 5;
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_add() {
        let a = IoDelta {
            reads: 1,
            writes: 2,
            logical: 3,
        };
        let b = IoDelta {
            reads: 10,
            writes: 20,
            logical: 30,
        };
        let c = a.add(&b);
        assert_eq!(c.reads, 11);
        assert_eq!(c.writes, 22);
        assert_eq!(c.logical, 33);
    }
}
