//! I/O accounting.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One counter on its own cache line. Packed `AtomicU64`s would share lines,
/// so two threads bumping logically unrelated counters would ping-pong the
/// same line between cores (false sharing). 64 bytes covers the
/// destructive-interference granularity of x86-64 and most aarch64 cores.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct PaddedCounter(AtomicU64);

impl std::ops::Deref for PaddedCounter {
    type Target = AtomicU64;

    fn deref(&self) -> &AtomicU64 {
        &self.0
    }
}

/// Number of counter stripes. A power of two so the thread-stripe assignment
/// can mask; 16 stripes keep collisions rare at the core counts the simulator
/// is benchmarked on, while a fold over them stays trivially cheap.
const STAT_STRIPES: usize = 16;

/// One stripe's worth of counters. All six live on the *same* cache line on
/// purpose: a stripe is written by (essentially) one thread, and an access
/// that misses bumps `logical`, `reads` and possibly `writes` back to back —
/// keeping them on one private line turns that into one line acquisition
/// instead of three. Padding to 64 bytes keeps adjacent stripes (written by
/// *different* threads) off each other's lines.
#[derive(Debug, Default)]
#[repr(align(64))]
struct StatStripe {
    reads: AtomicU64,
    writes: AtomicU64,
    logical: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
    capacity_violations: AtomicU64,
}

/// Round-robin stripe assignment: each thread picks a stripe once, the first
/// time it touches any device's stats, and keeps it for life. Round-robin
/// (rather than hashing the thread id) guarantees that up to `STAT_STRIPES`
/// concurrent threads never share a stripe.
fn stripe_index() -> usize {
    static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STAT_STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// The device-internal, thread-safe form of the counters, striped per thread.
///
/// Increments are `Relaxed` read-modify-writes on the calling thread's own
/// cache-line-padded [`StatStripe`], so they are never lost (the exactness
/// property the concurrent tests assert) and — unlike the PR 6 layout of one
/// shared padded atomic per counter — hot counters are not a single line that
/// every reader thread's RMW must bounce through. [`AtomicIoStats::snapshot`]
/// folds the stripes; snapshots taken while other threads are mid-operation
/// may mix adjacent operations, which is inherent to any monitoring read and
/// harmless for the EM cost accounting.
#[derive(Debug)]
pub(crate) struct AtomicIoStats {
    stripes: [StatStripe; STAT_STRIPES],
}

impl Default for AtomicIoStats {
    fn default() -> Self {
        Self {
            stripes: std::array::from_fn(|_| StatStripe::default()),
        }
    }
}

impl AtomicIoStats {
    fn stripe(&self) -> &StatStripe {
        self.stripes
            .get(stripe_index())
            .expect("stripe_index is reduced modulo the stripe count")
    }

    /// Account one logical access and its physical consequences.
    pub(crate) fn record_access(&self, miss: bool, wrote_back: bool) {
        let stripe = self.stripe();
        stripe.logical.fetch_add(1, Ordering::Relaxed);
        if miss {
            stripe.reads.fetch_add(1, Ordering::Relaxed);
        }
        if wrote_back {
            stripe.writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Account `n` physical writes (flushes, cache drops).
    pub(crate) fn add_writes(&self, n: u64) {
        if n > 0 {
            self.stripe().writes.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn add_alloc(&self) {
        self.stripe().allocs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_free(&self) {
        self.stripe().frees.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_capacity_violation(&self) {
        self.stripe()
            .capacity_violations
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> IoStats {
        let mut out = IoStats::default();
        for stripe in &self.stripes {
            out.reads += stripe.reads.load(Ordering::Relaxed);
            out.writes += stripe.writes.load(Ordering::Relaxed);
            out.logical += stripe.logical.load(Ordering::Relaxed);
            out.allocs += stripe.allocs.load(Ordering::Relaxed);
            out.frees += stripe.frees.load(Ordering::Relaxed);
            out.capacity_violations += stripe.capacity_violations.load(Ordering::Relaxed);
        }
        out
    }

    pub(crate) fn reset(&self) {
        for stripe in &self.stripes {
            stripe.reads.store(0, Ordering::Relaxed);
            stripe.writes.store(0, Ordering::Relaxed);
            stripe.logical.store(0, Ordering::Relaxed);
            stripe.allocs.store(0, Ordering::Relaxed);
            stripe.frees.store(0, Ordering::Relaxed);
            stripe.capacity_violations.store(0, Ordering::Relaxed);
        }
    }
}

/// Running I/O counters of a [`Device`](crate::Device).
///
/// `reads` and `writes` are *physical* block transfers (buffer-pool misses and
/// dirty evictions / flushes). `logical` counts every page access regardless of
/// whether it hit the pool; it is useful to sanity-check that the pool is in fact
/// absorbing repeated accesses.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Physical block reads (pool misses).
    pub reads: u64,
    /// Physical block writes (dirty evictions and explicit flushes).
    pub writes: u64,
    /// Logical page accesses (hits + misses).
    pub logical: u64,
    /// Pages allocated over the device lifetime.
    pub allocs: u64,
    /// Pages freed over the device lifetime.
    pub frees: u64,
    /// Number of times a page exceeded the block capacity `B` when written.
    /// Any non-zero value indicates a layout bug in a data structure.
    pub capacity_violations: u64,
}

impl IoStats {
    /// Total physical I/Os (`reads + writes`).
    pub fn total_ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of logical accesses served from the buffer pool, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.logical == 0 {
            return 1.0;
        }
        1.0 - (self.reads as f64 / self.logical as f64)
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} total={} logical={} hit_rate={:.3}",
            self.reads,
            self.writes,
            self.total_ios(),
            self.logical,
            self.hit_rate()
        )
    }
}

/// A point-in-time copy of the counters, used to measure a single operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot(pub IoStats);

/// The difference between two snapshots: the I/O cost of the work done in
/// between.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoDelta {
    /// Physical reads performed.
    pub reads: u64,
    /// Physical writes performed.
    pub writes: u64,
    /// Logical accesses performed.
    pub logical: u64,
}

impl IoDelta {
    /// Total physical I/Os in the interval.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Element-wise sum, useful when aggregating per-operation costs.
    pub fn add(&self, other: &IoDelta) -> IoDelta {
        IoDelta {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            logical: self.logical + other.logical,
        }
    }
}

impl IoSnapshot {
    /// I/Os performed since this snapshot was taken, given the current stats.
    pub fn delta(&self, now: &IoStats) -> IoDelta {
        IoDelta {
            reads: now.reads.saturating_sub(self.0.reads),
            writes: now.writes.saturating_sub(self.0.writes),
            logical: now.logical.saturating_sub(self.0.logical),
        }
    }
}

impl fmt::Display for IoDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} total={}",
            self.reads,
            self.writes,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_occupy_disjoint_cache_lines() {
        assert!(std::mem::align_of::<PaddedCounter>() >= 64);
        assert!(std::mem::size_of::<PaddedCounter>() >= 64);
        // Each stripe is written by one thread and sits on its own line.
        assert!(std::mem::align_of::<StatStripe>() >= 64);
        assert!(std::mem::size_of::<StatStripe>() >= 64);
        assert!(std::mem::size_of::<AtomicIoStats>() >= STAT_STRIPES * 64);
    }

    #[test]
    fn striped_increments_fold_exactly() {
        let stats = AtomicIoStats::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let stats = &stats;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        stats.record_access(i % 4 == 0, i % 16 == 0);
                        if i % 10 == 0 {
                            stats.add_alloc();
                        }
                    }
                });
            }
        });
        let s = stats.snapshot();
        assert_eq!(s.logical, 8_000);
        assert_eq!(s.reads, 8 * 250);
        assert_eq!(s.writes, 8 * 63); // i % 16 == 0 for 63 of 0..1000
        assert_eq!(s.allocs, 8 * 100);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStats::default());
    }

    #[test]
    fn delta_subtracts() {
        let before = IoSnapshot(IoStats {
            reads: 10,
            writes: 5,
            logical: 100,
            ..Default::default()
        });
        let now = IoStats {
            reads: 14,
            writes: 6,
            logical: 120,
            ..Default::default()
        };
        let d = before.delta(&now);
        assert_eq!(d.reads, 4);
        assert_eq!(d.writes, 1);
        assert_eq!(d.logical, 20);
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut s = IoStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        s.logical = 10;
        s.reads = 10;
        assert_eq!(s.hit_rate(), 0.0);
        s.reads = 5;
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_add() {
        let a = IoDelta {
            reads: 1,
            writes: 2,
            logical: 3,
        };
        let b = IoDelta {
            reads: 10,
            writes: 20,
            logical: 30,
        };
        let c = a.add(&b);
        assert_eq!(c.reads, 11);
        assert_eq!(c.writes, 22);
        assert_eq!(c.logical, 33);
    }
}
