//! Configuration of the simulated external-memory machine.

/// Parameters of the EM machine: block size `B` and memory size `M`, both in
/// words.
///
/// The paper requires `M = Ω(B)`; [`EmConfig::new`] enforces `M ≥ 2B` (the
/// minimum of the Aggarwal–Vitter model) and a block of at least 8 words so that
/// even tiny test configurations can hold a handful of entries per page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmConfig {
    /// Block size `B` in words.
    pub block_words: usize,
    /// Memory size `M` in words.
    pub mem_words: usize,
}

impl EmConfig {
    /// Minimum supported block size in words.
    pub const MIN_BLOCK_WORDS: usize = 8;

    /// Create a configuration with block size `block_words` and memory
    /// `mem_words`, clamping to the model's minima (`B ≥ 8`, `M ≥ 2B`).
    pub fn new(block_words: usize, mem_words: usize) -> Self {
        let block_words = block_words.max(Self::MIN_BLOCK_WORDS);
        let mem_words = mem_words.max(2 * block_words);
        Self {
            block_words,
            mem_words,
        }
    }

    /// A small configuration convenient for unit tests: `B = 64` words,
    /// `M = 16` blocks.
    pub fn small() -> Self {
        Self::new(64, 16 * 64)
    }

    /// A configuration mimicking a 4 KiB page / 64 MiB buffer-pool machine with
    /// 8-byte words: `B = 512` words, `M = 8 Mi` words.
    pub fn default_disk() -> Self {
        Self::new(512, 8 * 1024 * 1024)
    }

    /// Number of buffer-pool frames (`M / B`), at least 2.
    pub fn frames(&self) -> usize {
        (self.mem_words / self.block_words).max(2)
    }

    /// The paper's `lg_B n` for this block size.
    pub fn log_b(&self, n: usize) -> f64 {
        crate::log_b(self.block_words, n)
    }
}

impl Default for EmConfig {
    fn default() -> Self {
        Self::default_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_to_model_minima() {
        let c = EmConfig::new(1, 1);
        assert_eq!(c.block_words, EmConfig::MIN_BLOCK_WORDS);
        assert_eq!(c.mem_words, 2 * EmConfig::MIN_BLOCK_WORDS);
        assert_eq!(c.frames(), 2);
    }

    #[test]
    fn frames_is_m_over_b() {
        let c = EmConfig::new(128, 128 * 37);
        assert_eq!(c.frames(), 37);
    }

    #[test]
    fn default_is_reasonable() {
        let c = EmConfig::default();
        assert_eq!(c.block_words, 512);
        assert!(c.frames() > 1000);
    }
}
