//! Configuration of the simulated external-memory machine.

/// Replacement policy of the device's buffer pool.
///
/// The EM cost model only says "`M/B` frames of re-use"; *which* page a full
/// pool evicts is an implementation choice. The default sharded CLOCK pool
/// scales with reader threads (a hit only sets a per-frame reference bit
/// inside one address-hashed shard), while the exact global LRU keeps the
/// textbook eviction order that the I/O-cost bound tests replay against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// Address-hashed shards, each an independent CLOCK (second-chance)
    /// approximate LRU behind its own mutex. The concurrency default.
    #[default]
    ShardedClock,
    /// One global pool with exact LRU eviction behind a single mutex.
    /// Deterministic and oracle-checkable; use for I/O-cost bound tests.
    ExactLru,
}

/// Which [`StorageBackend`](crate::StorageBackend) a durable device opens.
///
/// Only consulted by [`Device::open`](crate::Device::open): `Ram` devices
/// come from [`Device::new`](crate::Device::new) and carry the default here
/// so the config round-trips. Opening a directory always produces a durable
/// backend — `File` (and `Ram`, which `open` treats as `File`) is the plain
/// synchronous file device, `ThreadPool` wraps it in the completion-model
/// shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// In-RAM simulator only; nothing durable (the historical behaviour).
    #[default]
    Ram,
    /// File-backed WAL device (`FileBackend`).
    File,
    /// File-backed WAL device behind the submit/poll worker-pool shim
    /// (`ThreadPoolBackend` over `FileBackend`).
    ThreadPool,
}

/// Parameters of the EM machine: block size `B` and memory size `M`, both in
/// words, plus the buffer-pool [`PoolPolicy`] and the [`BackendKind`] used
/// when the device is opened on a directory.
///
/// The paper requires `M = Ω(B)`; [`EmConfig::new`] enforces `M ≥ 2B` (the
/// minimum of the Aggarwal–Vitter model) and a block of at least 8 words so that
/// even tiny test configurations can hold a handful of entries per page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmConfig {
    /// Block size `B` in words.
    pub block_words: usize,
    /// Memory size `M` in words.
    pub mem_words: usize,
    /// Buffer-pool replacement policy.
    pub pool_policy: PoolPolicy,
    /// Storage backend selected by [`Device::open`](crate::Device::open).
    pub backend: BackendKind,
}

impl EmConfig {
    /// Minimum supported block size in words.
    pub const MIN_BLOCK_WORDS: usize = 8;

    /// Create a configuration with block size `block_words` and memory
    /// `mem_words`, clamping to the model's minima (`B ≥ 8`, `M ≥ 2B`).
    pub fn new(block_words: usize, mem_words: usize) -> Self {
        let block_words = block_words.max(Self::MIN_BLOCK_WORDS);
        let mem_words = mem_words.max(2 * block_words);
        Self {
            block_words,
            mem_words,
            pool_policy: PoolPolicy::default(),
            backend: BackendKind::default(),
        }
    }

    /// This configuration with the exact-LRU buffer pool (the deterministic
    /// test mode whose eviction order the I/O-cost bound suites replay).
    pub fn exact_lru(mut self) -> Self {
        self.pool_policy = PoolPolicy::ExactLru;
        self
    }

    /// This configuration with an explicit buffer-pool policy.
    pub fn pool_policy(mut self, policy: PoolPolicy) -> Self {
        self.pool_policy = policy;
        self
    }

    /// This configuration with an explicit storage backend for
    /// [`Device::open`](crate::Device::open).
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// A small configuration convenient for unit tests: `B = 64` words,
    /// `M = 16` blocks.
    pub fn small() -> Self {
        Self::new(64, 16 * 64)
    }

    /// A configuration mimicking a 4 KiB page / 64 MiB buffer-pool machine with
    /// 8-byte words: `B = 512` words, `M = 8 Mi` words.
    pub fn default_disk() -> Self {
        Self::new(512, 8 * 1024 * 1024)
    }

    /// Number of buffer-pool frames (`M / B`), at least 2.
    pub fn frames(&self) -> usize {
        (self.mem_words / self.block_words).max(2)
    }

    /// The paper's `lg_B n` for this block size.
    pub fn log_b(&self, n: usize) -> f64 {
        crate::log_b(self.block_words, n)
    }
}

impl Default for EmConfig {
    fn default() -> Self {
        Self::default_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_to_model_minima() {
        let c = EmConfig::new(1, 1);
        assert_eq!(c.block_words, EmConfig::MIN_BLOCK_WORDS);
        assert_eq!(c.mem_words, 2 * EmConfig::MIN_BLOCK_WORDS);
        assert_eq!(c.frames(), 2);
    }

    #[test]
    fn frames_is_m_over_b() {
        let c = EmConfig::new(128, 128 * 37);
        assert_eq!(c.frames(), 37);
    }

    #[test]
    fn default_is_reasonable() {
        let c = EmConfig::default();
        assert_eq!(c.block_words, 512);
        assert!(c.frames() > 1000);
        assert_eq!(c.pool_policy, PoolPolicy::ShardedClock);
    }

    #[test]
    fn exact_lru_flips_only_the_policy() {
        let c = EmConfig::small();
        let e = c.exact_lru();
        assert_eq!(e.pool_policy, PoolPolicy::ExactLru);
        assert_eq!(e.block_words, c.block_words);
        assert_eq!(e.mem_words, c.mem_words);
        assert_eq!(
            e.pool_policy(PoolPolicy::ShardedClock),
            EmConfig::small(),
            "round-trips back to the default policy"
        );
    }
}
