//! The shared simulated machine: configuration, buffer pool and counters.

use std::cell::RefCell;
use std::rc::Rc;

use crate::config::EmConfig;
use crate::file::BlockFile;
use crate::page::Page;
use crate::pool::Pool;
use crate::stats::{IoDelta, IoSnapshot, IoStats};

/// Identifier of a [`BlockFile`] on a device.
pub type FileId = u32;

/// Address of a page on the device: which file, which page within that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr {
    /// File identifier.
    pub file: FileId,
    /// Page index within the file.
    pub page: u32,
}

#[derive(Debug)]
struct DeviceInner {
    config: EmConfig,
    stats: RefCell<IoStats>,
    pool: RefCell<Pool>,
    next_file: RefCell<FileId>,
    /// Live page count per file, for space accounting.
    live_pages: RefCell<Vec<u64>>,
    file_names: RefCell<Vec<String>>,
}

/// A cheaply clonable handle to the simulated machine. All block files opened
/// from the same device share its buffer pool and I/O counters, which models one
/// machine running one data structure composed of many node files.
#[derive(Debug, Clone)]
pub struct Device {
    inner: Rc<DeviceInner>,
}

impl Device {
    /// Create a device with the given machine parameters.
    pub fn new(config: EmConfig) -> Self {
        Self {
            inner: Rc::new(DeviceInner {
                config,
                stats: RefCell::new(IoStats::default()),
                pool: RefCell::new(Pool::new(config.frames())),
                next_file: RefCell::new(0),
                live_pages: RefCell::new(Vec::new()),
                file_names: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Create a device with the default disk-like configuration.
    pub fn default_disk() -> Self {
        Self::new(EmConfig::default())
    }

    /// The machine parameters.
    pub fn config(&self) -> EmConfig {
        self.inner.config
    }

    /// Block size `B` in words.
    pub fn block_words(&self) -> usize {
        self.inner.config.block_words
    }

    /// Open a new, empty block file for pages of type `P`. The `name` is only
    /// used for diagnostics and space breakdowns.
    pub fn open_file<P: Page>(&self, name: &str) -> BlockFile<P> {
        let id = {
            let mut next = self.inner.next_file.borrow_mut();
            let id = *next;
            *next += 1;
            id
        };
        self.inner.live_pages.borrow_mut().push(0);
        self.inner.file_names.borrow_mut().push(name.to_string());
        BlockFile::new(self.clone(), id)
    }

    /// Current counter values.
    pub fn stats(&self) -> IoStats {
        *self.inner.stats.borrow()
    }

    /// Take a snapshot to later measure the cost of an operation.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot(self.stats())
    }

    /// I/Os performed since `snap`.
    pub fn since(&self, snap: &IoSnapshot) -> IoDelta {
        snap.delta(&self.stats())
    }

    /// Run `f` and return its result together with the I/Os it performed.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, IoDelta) {
        let snap = self.snapshot();
        let r = f();
        (r, self.since(&snap))
    }

    /// Reset all counters to zero (the buffer-pool contents are kept).
    pub fn reset_stats(&self) {
        *self.inner.stats.borrow_mut() = IoStats::default();
    }

    /// Evict every page from the buffer pool, charging write-backs for dirty
    /// pages. Used by experiments that want cold-cache query measurements.
    pub fn drop_cache(&self) {
        let writes = self.inner.pool.borrow_mut().clear();
        self.inner.stats.borrow_mut().writes += writes;
    }

    /// Write back all dirty pages (counted) without evicting them.
    pub fn flush(&self) {
        let writes = self.inner.pool.borrow_mut().flush();
        self.inner.stats.borrow_mut().writes += writes;
    }

    /// Total number of live pages across all files — the structure's space in
    /// blocks, the paper's space measure.
    pub fn space_blocks(&self) -> u64 {
        self.inner.live_pages.borrow().iter().sum()
    }

    /// Per-file `(name, live pages)` breakdown.
    pub fn space_breakdown(&self) -> Vec<(String, u64)> {
        let names = self.inner.file_names.borrow();
        let pages = self.inner.live_pages.borrow();
        names.iter().cloned().zip(pages.iter().copied()).collect()
    }

    /// Number of buffer-pool frames (`M/B`).
    pub fn frames(&self) -> usize {
        self.inner.pool.borrow().capacity()
    }

    /// Number of pages currently resident in the pool.
    pub fn resident_pages(&self) -> usize {
        self.inner.pool.borrow().resident()
    }

    // ----- internal hooks used by BlockFile -----

    pub(crate) fn record_access(&self, addr: PageAddr, write: bool) {
        let outcome = self.inner.pool.borrow_mut().access(addr, write);
        let mut stats = self.inner.stats.borrow_mut();
        stats.logical += 1;
        if outcome.miss {
            stats.reads += 1;
        }
        if outcome.wrote_back {
            stats.writes += 1;
        }
    }

    pub(crate) fn record_alloc(&self, file: FileId) {
        self.inner.stats.borrow_mut().allocs += 1;
        self.inner.live_pages.borrow_mut()[file as usize] += 1;
    }

    pub(crate) fn record_free(&self, addr: PageAddr) {
        self.inner.pool.borrow_mut().discard(addr);
        let mut stats = self.inner.stats.borrow_mut();
        stats.frees += 1;
        drop(stats);
        let mut live = self.inner.live_pages.borrow_mut();
        let slot = &mut live[addr.file as usize];
        *slot = slot.saturating_sub(1);
    }

    pub(crate) fn record_capacity_violation(&self, words: usize) {
        self.inner.stats.borrow_mut().capacity_violations += 1;
        debug_assert!(
            false,
            "page of {} words exceeds block capacity of {} words",
            words,
            self.block_words()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct P(usize);
    impl Page for P {
        fn words(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn measure_reports_deltas() {
        let dev = Device::new(EmConfig::small());
        let file: BlockFile<P> = dev.open_file("t");
        let id = file.alloc(P(4));
        // Warm access.
        file.with(id, |_| ());
        let (_, d) = dev.measure(|| file.with(id, |_| ()));
        assert_eq!(d.reads, 0, "second access hits the pool");
        assert_eq!(d.logical, 1);
    }

    #[test]
    fn space_accounting_tracks_alloc_and_free() {
        let dev = Device::new(EmConfig::small());
        let f1: BlockFile<P> = dev.open_file("a");
        let f2: BlockFile<P> = dev.open_file("b");
        let a = f1.alloc(P(1));
        let _b = f1.alloc(P(1));
        let _c = f2.alloc(P(1));
        assert_eq!(dev.space_blocks(), 3);
        f1.free(a);
        assert_eq!(dev.space_blocks(), 2);
        let breakdown = dev.space_breakdown();
        assert_eq!(breakdown.len(), 2);
        assert_eq!(breakdown[0], ("a".to_string(), 1));
        assert_eq!(breakdown[1], ("b".to_string(), 1));
    }

    #[test]
    fn small_pool_causes_misses_on_scan() {
        // With only a handful of frames, repeatedly scanning more pages than
        // fit must incur physical reads every round.
        let cfg = EmConfig::new(64, 4 * 64); // 4 frames
        let dev = Device::new(cfg);
        let file: BlockFile<P> = dev.open_file("scan");
        let ids: Vec<_> = (0..16).map(|_| file.alloc(P(8))).collect();
        dev.reset_stats();
        for _ in 0..3 {
            for &id in &ids {
                file.with(id, |_| ());
            }
        }
        let s = dev.stats();
        assert_eq!(s.logical, 48);
        assert!(
            s.reads >= 40,
            "a 4-frame pool cannot cache a 16-page scan (reads={})",
            s.reads
        );
    }

    #[test]
    fn drop_cache_forces_cold_reads() {
        let dev = Device::new(EmConfig::small());
        let file: BlockFile<P> = dev.open_file("t");
        let id = file.alloc(P(1));
        file.with(id, |_| ());
        dev.drop_cache();
        let (_, d) = dev.measure(|| file.with(id, |_| ()));
        assert_eq!(d.reads, 1);
    }
}
