//! The shared simulated machine: configuration, buffer pool and counters.
//!
//! Thread safety: a [`Device`] is a cheap clone of an `Arc`-shared inner
//! state. The I/O counters are per-thread striped atomics folded on read
//! (increments are never lost), the buffer pool is either a set of
//! address-hashed CLOCK shards (the default — a hit touches only its shard's
//! mutex) or one exact-LRU pool behind a single mutex (the deterministic test
//! mode, [`PoolPolicy::ExactLru`](crate::PoolPolicy)), and the file directory
//! sits behind a `RwLock` whose per-file live-page counts are atomics, so the
//! alloc/free hot path only takes the read side. A `Device` — and every
//! [`BlockFile`] opened from it — is therefore `Send + Sync` and may be hit
//! from many threads at once; see DESIGN.md §4/§8 for the locking design.

use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, RwLock};

use crate::backend::{
    BackendError, BackendResult, DurableStats, FaultPlan, FileBackend, RamBackend, StorageBackend,
    ThreadPoolBackend,
};
use crate::config::{BackendKind, EmConfig, PoolPolicy};
use crate::file::BlockFile;
use crate::page::{Page, PersistPage};
use crate::pool::{AccessOutcome, Pool, ShardedPool};
use crate::stats::{AtomicIoStats, IoDelta, IoSnapshot, IoStats, PaddedCounter};

/// Identifier of a [`BlockFile`] on a device.
pub type FileId = u32;

/// Address of a page on the device: which file, which page within that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr {
    /// File identifier.
    pub file: FileId,
    /// Page index within the file.
    pub page: u32,
}

/// Per-file bookkeeping: diagnostics name and live page count (the space
/// measure). The vectors only grow under [`Device::open_file`]'s write lock;
/// the counters themselves are atomics, so `record_alloc`/`record_free` bump
/// them under the *read* lock and never contend with each other or with
/// `space_blocks()` readers.
#[derive(Debug, Default)]
struct FileDirectory {
    names: Vec<String>,
    live_pages: Vec<PaddedCounter>,
}

/// The device's buffer pool in one of its two policies.
#[derive(Debug)]
enum PoolKind {
    /// Address-hashed CLOCK shards; locking lives inside [`ShardedPool`].
    Sharded(ShardedPool),
    /// One exact-LRU pool behind a global mutex (deterministic test mode).
    Exact(Mutex<Pool>),
}

impl PoolKind {
    fn access(&self, addr: PageAddr, write: bool) -> AccessOutcome {
        match self {
            PoolKind::Sharded(sharded) => sharded.access(addr, write),
            PoolKind::Exact(pool) => pool.lock().unwrap().access(addr, write),
        }
    }

    fn discard(&self, addr: PageAddr) {
        match self {
            PoolKind::Sharded(sharded) => sharded.discard(addr),
            PoolKind::Exact(pool) => pool.lock().unwrap().discard(addr),
        }
    }

    fn flush(&self) -> u64 {
        match self {
            PoolKind::Sharded(sharded) => sharded.flush(),
            PoolKind::Exact(pool) => pool.lock().unwrap().flush(),
        }
    }

    fn clear(&self) -> u64 {
        match self {
            PoolKind::Sharded(sharded) => sharded.clear(),
            PoolKind::Exact(pool) => pool.lock().unwrap().clear(),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            PoolKind::Sharded(sharded) => sharded.capacity(),
            PoolKind::Exact(pool) => pool.lock().unwrap().capacity(),
        }
    }

    fn resident(&self) -> usize {
        match self {
            PoolKind::Sharded(sharded) => sharded.resident(),
            PoolKind::Exact(pool) => pool.lock().unwrap().resident(),
        }
    }

    fn shard_count(&self) -> usize {
        match self {
            PoolKind::Sharded(sharded) => sharded.shard_count(),
            PoolKind::Exact(_) => 1,
        }
    }
}

#[derive(Debug)]
struct DeviceInner {
    config: EmConfig,
    stats: AtomicIoStats,
    pool: PoolKind,
    files: RwLock<FileDirectory>,
    backend: Arc<dyn StorageBackend>,
}

/// A cheaply clonable handle to the simulated machine. All block files opened
/// from the same device share its buffer pool and I/O counters, which models one
/// machine running one data structure composed of many node files.
#[derive(Debug, Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    /// Create a device with the given machine parameters (in-RAM backend —
    /// the historical behaviour, nothing durable).
    pub fn new(config: EmConfig) -> Self {
        Self::with_backend(config, Arc::new(RamBackend))
    }

    /// Create a device over an explicit [`StorageBackend`].
    pub fn with_backend(config: EmConfig, backend: Arc<dyn StorageBackend>) -> Self {
        let pool = match config.pool_policy {
            PoolPolicy::ShardedClock => PoolKind::Sharded(ShardedPool::new(config.frames())),
            PoolPolicy::ExactLru => PoolKind::Exact(Mutex::new(Pool::new(config.frames()))),
        };
        Self {
            inner: Arc::new(DeviceInner {
                config,
                stats: AtomicIoStats::default(),
                pool,
                files: RwLock::new(FileDirectory::default()),
                backend,
            }),
        }
    }

    /// Open (or create) a durable device rooted at `dir`, running crash
    /// recovery on whatever the directory holds. `config.backend` picks the
    /// implementation: [`BackendKind::ThreadPool`] wraps the file device in
    /// the completion-model shim, everything else opens [`FileBackend`]
    /// directly.
    pub fn open(config: EmConfig, dir: &Path) -> BackendResult<Self> {
        let file = Arc::new(FileBackend::open(dir, config)?);
        let backend: Arc<dyn StorageBackend> = match config.backend {
            BackendKind::ThreadPool => Arc::new(ThreadPoolBackend::new(file, 4)),
            BackendKind::Ram | BackendKind::File => file,
        };
        Ok(Self::with_backend(config, backend))
    }

    /// Create a device with the default disk-like configuration.
    pub fn default_disk() -> Self {
        Self::new(EmConfig::default())
    }

    /// The machine parameters.
    pub fn config(&self) -> EmConfig {
        self.inner.config
    }

    /// Block size `B` in words.
    pub fn block_words(&self) -> usize {
        self.inner.config.block_words
    }

    /// Open a new, empty block file for pages of type `P`. The `name` is only
    /// used for diagnostics and space breakdowns.
    pub fn open_file<P: Page>(&self, name: &str) -> BlockFile<P> {
        BlockFile::new(self.clone(), self.mint_file_id(name))
    }

    /// Open a *durable* block file: pages of type `P` are written through to
    /// the backend (and restored from it now, at open). The `name` is the
    /// stable identity of the file across reopens — runtime [`FileId`]s are
    /// minted in open order and bound to it.
    ///
    /// Restoring charges one alloc and one read access per recovered page,
    /// so space accounting and the I/O counters see the restore for what it
    /// is: a cold read of the whole file.
    pub fn open_durable_file<P: PersistPage>(&self, name: &str) -> BackendResult<BlockFile<P>> {
        let id = self.mint_file_id(name);
        self.inner.backend.bind_file(id, name)?;
        let mut pages = Vec::new();
        for (page, words) in self.inner.backend.pages_of(id)? {
            let decoded = P::decode(&words).ok_or_else(|| {
                BackendError::Corrupt(format!(
                    "page {page} of durable file '{name}' failed to decode"
                ))
            })?;
            pages.push((page, decoded));
        }
        let file = BlockFile::restored(self.clone(), id, pages);
        for pid in file.live_ids() {
            self.record_alloc(id);
            self.record_access(
                PageAddr {
                    file: id,
                    page: pid.0,
                },
                false,
            );
        }
        Ok(file)
    }

    fn mint_file_id(&self, name: &str) -> FileId {
        let mut files = self.inner.files.write().unwrap();
        let id = files.names.len() as FileId;
        files.names.push(name.to_string());
        files.live_pages.push(PaddedCounter::default());
        id
    }

    /// Current counter values.
    pub fn stats(&self) -> IoStats {
        self.inner.stats.snapshot()
    }

    /// Take a snapshot to later measure the cost of an operation.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot(self.stats())
    }

    /// I/Os performed since `snap`.
    pub fn since(&self, snap: &IoSnapshot) -> IoDelta {
        snap.delta(&self.stats())
    }

    /// Run `f` and return its result together with the I/Os it performed.
    /// Under concurrency the delta also includes whatever other threads did in
    /// the interval; cost measurements belong in single-threaded phases.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, IoDelta) {
        let snap = self.snapshot();
        let r = f();
        (r, self.since(&snap))
    }

    /// Reset all counters to zero (the buffer-pool contents are kept).
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
    }

    /// Evict every page from the buffer pool, charging write-backs for dirty
    /// pages. Used by experiments that want cold-cache query measurements.
    /// With the sharded pool, shards are cleared one at a time; concurrent
    /// accesses may repopulate earlier shards while later ones drain.
    ///
    /// On a durable backend the staged WAL images are committed *first*:
    /// evicting a dirty page must never discard a logged-but-uncommitted
    /// write (the backend is the only copy once the frame is gone). A
    /// backend failure here is sticky — it resurfaces as an error on the
    /// next explicit [`commit_backend`](Self::commit_backend).
    pub fn drop_cache(&self) {
        let _ = self.inner.backend.commit();
        let writes = self.inner.pool.clear();
        self.inner.stats.add_writes(writes);
    }

    /// Write back all dirty pages (counted) without evicting them. On a
    /// durable backend this is a full checkpoint — commit staged images,
    /// fsync, truncate the log — *before* the simulated pool flush, so the
    /// "everything clean" promise holds on disk too.
    pub fn flush(&self) {
        let _ = self.inner.backend.commit();
        let _ = self.inner.backend.checkpoint();
        let writes = self.inner.pool.flush();
        self.inner.stats.add_writes(writes);
    }

    /// The storage backend behind this device.
    pub fn backend(&self) -> Arc<dyn StorageBackend> {
        Arc::clone(&self.inner.backend)
    }

    /// Whether pages written through this device survive reopen.
    pub fn is_durable(&self) -> bool {
        self.inner.backend.is_durable()
    }

    /// Commit all staged backend changes (log → fsync → apply). This is also
    /// where earlier swallowed write-through errors surface: a dead backend
    /// repeats its fatal error here.
    pub fn commit_backend(&self) -> BackendResult<u64> {
        self.inner.backend.commit()
    }

    /// Commit + fsync + truncate the backend's log.
    pub fn checkpoint_backend(&self) -> BackendResult<()> {
        self.inner.backend.checkpoint()
    }

    /// Arm a scripted crash on the backend (no-op when not durable).
    pub fn arm_backend_fault(&self, plan: FaultPlan) {
        self.inner.backend.arm_fault(plan);
    }

    /// Counters of the durable plane (all zero when not durable).
    pub fn durable_stats(&self) -> DurableStats {
        self.inner.backend.durable_stats()
    }

    /// Total number of live pages across all files — the structure's space in
    /// blocks, the paper's space measure.
    pub fn space_blocks(&self) -> u64 {
        let files = self.inner.files.read().unwrap();
        files
            .live_pages
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-file `(name, live pages)` breakdown.
    pub fn space_breakdown(&self) -> Vec<(String, u64)> {
        let files = self.inner.files.read().unwrap();
        files
            .names
            .iter()
            .cloned()
            .zip(files.live_pages.iter().map(|c| c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Number of buffer-pool frames (`M/B`).
    pub fn frames(&self) -> usize {
        self.inner.pool.capacity()
    }

    /// Number of pages currently resident in the pool.
    pub fn resident_pages(&self) -> usize {
        self.inner.pool.resident()
    }

    /// Number of buffer-pool shards (1 in the exact-LRU test mode).
    pub fn pool_shards(&self) -> usize {
        self.inner.pool.shard_count()
    }

    // ----- internal hooks used by BlockFile -----

    pub(crate) fn record_access(&self, addr: PageAddr, write: bool) {
        let outcome = self.inner.pool.access(addr, write);
        self.inner
            .stats
            .record_access(outcome.miss, outcome.wrote_back);
    }

    pub(crate) fn record_alloc(&self, file: FileId) {
        self.inner.stats.add_alloc();
        let files = self.inner.files.read().unwrap();
        files
            .live_pages
            .get(file as usize)
            .expect("FileId minted by this device")
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_free(&self, addr: PageAddr) {
        self.inner.pool.discard(addr);
        self.inner.stats.add_free();
        let files = self.inner.files.read().unwrap();
        let live = files
            .live_pages
            .get(addr.file as usize)
            .expect("FileId minted by this device");
        // Saturating decrement: a count that would underflow indicates a
        // caller bug (free without alloc) and pins at zero, matching the old
        // mutex-guarded behaviour.
        let mut cur = live.load(Ordering::Relaxed);
        while cur > 0 {
            match live.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Write-through of a durable page image. Errors are swallowed here —
    /// the backend is dead after any failure and the error resurfaces,
    /// verbatim, on the next `commit_backend()` — so the simulated hot path
    /// keeps its infallible signature.
    pub(crate) fn backend_put(&self, addr: PageAddr, words: &[u64]) {
        let _ = self.inner.backend.put_page(addr, words);
    }

    /// Write-through of a durable page drop (same error contract as
    /// [`backend_put`](Self::backend_put)).
    pub(crate) fn backend_drop(&self, addr: PageAddr) {
        let _ = self.inner.backend.drop_page(addr);
    }

    pub(crate) fn record_capacity_violation(&self, words: usize) {
        self.inner.stats.add_capacity_violation();
        debug_assert!(
            false,
            "page of {} words exceeds block capacity of {} words",
            words,
            self.block_words()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct P(usize);
    impl Page for P {
        fn words(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn measure_reports_deltas() {
        let dev = Device::new(EmConfig::small());
        let file: BlockFile<P> = dev.open_file("t");
        let id = file.alloc(P(4));
        // Warm access.
        file.with(id, |_| ());
        let (_, d) = dev.measure(|| file.with(id, |_| ()));
        assert_eq!(d.reads, 0, "second access hits the pool");
        assert_eq!(d.logical, 1);
    }

    #[test]
    fn space_accounting_tracks_alloc_and_free() {
        let dev = Device::new(EmConfig::small());
        let f1: BlockFile<P> = dev.open_file("a");
        let f2: BlockFile<P> = dev.open_file("b");
        let a = f1.alloc(P(1));
        let _b = f1.alloc(P(1));
        let _c = f2.alloc(P(1));
        assert_eq!(dev.space_blocks(), 3);
        f1.free(a);
        assert_eq!(dev.space_blocks(), 2);
        let breakdown = dev.space_breakdown();
        assert_eq!(breakdown.len(), 2);
        assert_eq!(breakdown[0], ("a".to_string(), 1));
        assert_eq!(breakdown[1], ("b".to_string(), 1));
    }

    #[test]
    fn small_pool_causes_misses_on_scan() {
        // With only a handful of frames, repeatedly scanning more pages than
        // fit must incur physical reads every round.
        let cfg = EmConfig::new(64, 4 * 64); // 4 frames
        let dev = Device::new(cfg);
        let file: BlockFile<P> = dev.open_file("scan");
        let ids: Vec<_> = (0..16).map(|_| file.alloc(P(8))).collect();
        dev.reset_stats();
        for _ in 0..3 {
            for &id in &ids {
                file.with(id, |_| ());
            }
        }
        let s = dev.stats();
        assert_eq!(s.logical, 48);
        assert!(
            s.reads >= 40,
            "a 4-frame pool cannot cache a 16-page scan (reads={})",
            s.reads
        );
    }

    #[test]
    fn drop_cache_forces_cold_reads() {
        let dev = Device::new(EmConfig::small());
        let file: BlockFile<P> = dev.open_file("t");
        let id = file.alloc(P(1));
        file.with(id, |_| ());
        dev.drop_cache();
        let (_, d) = dev.measure(|| file.with(id, |_| ()));
        assert_eq!(d.reads, 1);
    }

    #[derive(Clone, Debug, PartialEq)]
    struct DP(Vec<u64>);
    impl Page for DP {
        fn words(&self) -> usize {
            1 + self.0.len()
        }
    }
    impl crate::page::PersistPage for DP {
        fn encode(&self, out: &mut Vec<u64>) {
            out.extend_from_slice(&self.0);
        }
        fn decode(words: &[u64]) -> Option<Self> {
            Some(DP(words.to_vec()))
        }
    }

    #[test]
    fn durable_file_roundtrips_across_reopen() {
        for kind in [BackendKind::File, BackendKind::ThreadPool] {
            let dir = std::env::temp_dir().join(format!(
                "emsim-dev-durable-{:?}-{}",
                kind,
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = EmConfig::small().backend(kind);
            let (a, b);
            {
                let dev = Device::open(cfg, &dir).unwrap();
                assert!(dev.is_durable());
                let f = dev.open_durable_file::<DP>("nodes").unwrap();
                a = f.alloc(DP(vec![1, 2]));
                b = f.alloc(DP(vec![3]));
                f.with_mut(a, |p| p.0.push(9));
                f.free(b);
                dev.commit_backend().unwrap();
            }
            let dev = Device::open(cfg, &dir).unwrap();
            let f = dev.open_durable_file::<DP>("nodes").unwrap();
            assert_eq!(f.get(a), DP(vec![1, 2, 9]));
            assert!(!f.is_live(b));
            assert_eq!(dev.space_blocks(), 1, "restore must recount live pages");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn drop_cache_commits_staged_writes_first() {
        let dir = std::env::temp_dir().join(format!("emsim-dev-dropcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = EmConfig::small();
        let a;
        {
            let dev = Device::open(cfg, &dir).unwrap();
            let f = dev.open_durable_file::<DP>("nodes").unwrap();
            a = f.alloc(DP(vec![42]));
            // No explicit commit: drop_cache must not lose the logged write.
            dev.drop_cache();
            assert!(dev.durable_stats().commits >= 1);
        }
        let dev = Device::open(cfg, &dir).unwrap();
        let f = dev.open_durable_file::<DP>("nodes").unwrap();
        assert_eq!(f.get(a), DP(vec![42]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn device_and_files_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Device>();
        assert_send_sync::<BlockFile<P>>();
    }

    #[test]
    fn concurrent_accesses_never_lose_counter_updates() {
        // The no-lost-updates contract: with T threads each performing A
        // logical accesses and the allocation pattern known, the counters must
        // come out exact — not approximately right.
        const THREADS: usize = 8;
        const ACCESSES: u64 = 2_000;
        let dev = Device::new(EmConfig::new(64, 8 * 64)); // 8 frames: misses guaranteed
        let file: BlockFile<P> = dev.open_file("shared");
        let ids: Vec<_> = (0..64).map(|_| file.alloc(P(4))).collect();
        assert_eq!(dev.stats().allocs, 64);
        dev.reset_stats();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let file = &file;
                let ids = &ids;
                scope.spawn(move || {
                    for i in 0..ACCESSES {
                        let id = ids[((i as usize) * 7 + t * 13) % ids.len()];
                        file.with(id, |_| ());
                    }
                });
            }
        });
        let s = dev.stats();
        assert_eq!(s.logical, THREADS as u64 * ACCESSES);
        assert_eq!(dev.space_blocks(), 64);
        assert!(
            s.reads >= 64,
            "a tiny pool must miss under a 64-page working set"
        );
    }
}
