//! Storage backends: where pages *actually* live.
//!
//! The simulator's cost model (buffer pool, I/O counters) is independent of
//! the medium behind it. A [`StorageBackend`] is that medium:
//!
//! * [`RamBackend`] — the historical behaviour: pages live only in the typed
//!   [`BlockFile`](crate::BlockFile) slots, nothing is durable. Every method
//!   is a no-op, so `Device::new` is exactly as cheap as before.
//! * [`FileBackend`] — real block I/O. Durable files write every page image
//!   through a page-granular write-ahead log (`wal.topk`), commit batches
//!   with *log → fsync → apply → (checkpoint)*, and keep committed images in
//!   fixed-size checksummed slots of `data.topk`. Reopening a directory
//!   recovers: scan slots, replay committed WAL batches, discard the torn /
//!   uncommitted tail, checkpoint.
//! * [`ThreadPoolBackend`] — a completion-model shim over any other backend:
//!   submit an [`IoRequest`], get a [`Ticket`], poll or wait for the
//!   [`IoOutcome`]. This is the API shape an io_uring backend will implement;
//!   today a small worker pool executes the requests.
//!
//! ## On-disk format (all integers little-endian `u64` words)
//!
//! `meta.topk` (text, atomically replaced via `meta.tmp` + rename):
//!
//! ```text
//! topkmeta v1
//! block_words <B>
//! lsn <last checkpointed commit>
//! file <name>          # stable file id = position of this line
//! ```
//!
//! `data.topk` — fixed slots of `5 + B` words:
//! `[state, key, len, lsn, crc, payload…]` where `state` is 1 for live,
//! `key = stable_file << 32 | page`, and `crc` is FNV-1a-64 over the other
//! header words plus `payload[..len]`. A torn slot fails its checksum and is
//! treated as free; the WAL replays the image that was meant to be there.
//!
//! `wal.topk` — a sequence of records, each ending in a FNV-1a-64 word over
//! the record's preceding words:
//!
//! ```text
//! [1, key, len, payload…, crc]   page image
//! [2, key, crc]                  page free
//! [3, lsn, crc]                  commit: everything since the previous
//!                                commit becomes batch `lsn`
//! [4, stable, name_bytes, name…, crc]   file-name binding
//! ```
//!
//! `lock.topk` — an empty file held under an exclusive advisory lock
//! (`File::try_lock`) for the backend's lifetime: a second open of a live
//! directory fails instead of corrupting it. The kernel drops the lock when
//! the holder dies, so a crash never bricks the directory.
//!
//! ## Locking
//!
//! All backend state sits behind the single `wal` mutex — the auditor's
//! `wal` lock class (DESIGN.md §8): device I/O while it is held is forbidden
//! by Rule B except the log writer itself, the one pragma-sanctioned
//! `write_all_at` in [`FileBackend::put_page`]. Every other file operation
//! lives in a `WalState` helper.
//!
//! ## Fault injection
//!
//! [`FaultPlan`] kills the backend at a chosen [`KillPhase`] of the N-th
//! commit (or tears the WAL tail after N appends). A killed backend stays
//! dead — every later call returns the same error — which models a crashed
//! process without actually exiting: the crash-recovery testkit topology
//! reopens the directory and checks the recovered state.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::config::EmConfig;
use crate::device::{FileId, PageAddr};

/// Error from a storage backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The underlying medium failed (or the backend is dead after a failure).
    Io(String),
    /// On-disk state failed validation while opening or reading.
    Corrupt(String),
    /// An armed [`FaultPlan`] fired; the backend is now dead.
    Injected(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Io(m) => write!(f, "backend I/O error: {m}"),
            BackendError::Corrupt(m) => write!(f, "backend corruption: {m}"),
            BackendError::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// Result alias for backend operations.
pub type BackendResult<T> = Result<T, BackendError>;

/// Where in the commit protocol an armed fault kills the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPhase {
    /// Die before the commit record reaches the log: the whole batch must
    /// vanish on recovery.
    BeforeWalFsync,
    /// Die after the commit record is durable but before any slot is
    /// written: recovery must replay the whole batch.
    AfterWalFsync,
    /// Die halfway through applying slots: recovery must complete the batch
    /// over the torn data file.
    MidApply,
}

/// A scripted crash: kill the backend at `phase` of the commit numbered
/// `fail_after_commits` (0-based), or tear the WAL tail after
/// `fail_after_appends` page records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Kill the commit whose 0-based ordinal equals this value.
    pub fail_after_commits: Option<u64>,
    /// After this many successful WAL appends, write half a record and die.
    pub fail_after_appends: Option<u64>,
    /// Which phase of the doomed commit dies.
    pub phase: KillPhase,
}

impl FaultPlan {
    /// Kill the `n`-th commit (0-based) at `phase`.
    pub fn kill_at_commit(n: u64, phase: KillPhase) -> Self {
        Self {
            fail_after_commits: Some(n),
            fail_after_appends: None,
            phase,
        }
    }

    /// Tear the WAL after `n` successful page-record appends.
    pub fn tear_wal_after(n: u64) -> Self {
        Self {
            fail_after_commits: None,
            fail_after_appends: Some(n),
            phase: KillPhase::BeforeWalFsync,
        }
    }
}

/// Counters of the durable plane (all zero for [`RamBackend`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// WAL records appended (page + free + bind + commit).
    pub wal_appends: u64,
    /// Bytes appended to the WAL.
    pub wal_bytes: u64,
    /// Commit batches made durable.
    pub commits: u64,
    /// Checkpoints (WAL truncations).
    pub checkpoints: u64,
    /// Physical slot reads from the data file.
    pub preads: u64,
    /// Physical slot writes to the data file.
    pub pwrites: u64,
    /// Live page images found in the data file at open.
    pub recovered_pages: u64,
    /// Committed WAL batches replayed at open.
    pub recovered_commits: u64,
}

/// The medium behind a [`Device`](crate::Device).
///
/// Method names deliberately avoid the auditor's I/O-entry-point vocabulary
/// (`with`, `alloc`, `free`, …) so backend calls sites are classified by the
/// lock they hold, not mistaken for buffer-pool traffic.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Short diagnostic name ("ram", "file", "threadpool").
    fn name(&self) -> &'static str;

    /// Whether pages written through this backend survive reopen.
    fn is_durable(&self) -> bool;

    /// Associate a runtime [`FileId`] with a stable file name, so page
    /// addresses survive reopen even though runtime ids are minted in open
    /// order.
    fn bind_file(&self, id: FileId, name: &str) -> BackendResult<()>;

    /// All committed `(page, image)` pairs of a bound file, in page order.
    fn pages_of(&self, id: FileId) -> BackendResult<Vec<(u32, Vec<u64>)>>;

    /// Stage a page image; durable after the next [`commit`](Self::commit).
    fn put_page(&self, addr: PageAddr, words: &[u64]) -> BackendResult<()>;

    /// The current image of a page (staged overlay wins), or `None`.
    fn get_page(&self, addr: PageAddr) -> BackendResult<Option<Vec<u64>>>;

    /// Stage a page drop; durable after the next commit.
    fn drop_page(&self, addr: PageAddr) -> BackendResult<()>;

    /// Make every staged change durable: append the commit record, fsync the
    /// log, apply slot images. Returns the new log sequence number.
    fn commit(&self) -> BackendResult<u64>;

    /// Commit if needed, fsync the data file, rewrite the meta file and
    /// truncate the WAL.
    fn checkpoint(&self) -> BackendResult<()>;

    /// Arm a scripted crash (no-op on non-durable backends).
    fn arm_fault(&self, _plan: FaultPlan) {}

    /// Counters of the durable plane.
    fn durable_stats(&self) -> DurableStats {
        DurableStats::default()
    }
}

// ---------------------------------------------------------------------------
// RamBackend
// ---------------------------------------------------------------------------

/// The historical in-RAM medium: nothing is durable, every method is a no-op.
#[derive(Debug, Default, Clone, Copy)]
pub struct RamBackend;

impl StorageBackend for RamBackend {
    fn name(&self) -> &'static str {
        "ram"
    }

    fn is_durable(&self) -> bool {
        false
    }

    fn bind_file(&self, _id: FileId, _name: &str) -> BackendResult<()> {
        Ok(())
    }

    fn pages_of(&self, _id: FileId) -> BackendResult<Vec<(u32, Vec<u64>)>> {
        Ok(Vec::new())
    }

    fn put_page(&self, _addr: PageAddr, _words: &[u64]) -> BackendResult<()> {
        Ok(())
    }

    fn get_page(&self, _addr: PageAddr) -> BackendResult<Option<Vec<u64>>> {
        Ok(None)
    }

    fn drop_page(&self, _addr: PageAddr) -> BackendResult<()> {
        Ok(())
    }

    fn commit(&self) -> BackendResult<u64> {
        Ok(0)
    }

    fn checkpoint(&self) -> BackendResult<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Word/byte plumbing
// ---------------------------------------------------------------------------

const META_HEADER: &str = "topkmeta v1";
const SLOT_HEADER_WORDS: usize = 5;
const TAG_PAGE: u64 = 1;
const TAG_FREE: u64 = 2;
const TAG_COMMIT: u64 = 3;
const TAG_BIND: u64 = 4;
const SLOT_LIVE: u64 = 1;
const SLOT_FREE: u64 = 0;

/// Streaming FNV-1a-64 over machine words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn push_all(&mut self, ws: &[u64]) {
        for &w in ws {
            self.push(w);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Bytes → words, dropping any trailing partial word (a torn tail).
fn bytes_to_words(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .filter_map(|c| c.try_into().ok().map(u64::from_le_bytes))
        .collect()
}

fn pack_key(stable: u32, page: u32) -> u64 {
    (u64::from(stable) << 32) | u64::from(page)
}

fn unpack_key(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Forward-only reader over a word slice; `None` means the input ended.
struct Cursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(words: &'a [u64]) -> Self {
        Self { words, pos: 0 }
    }

    fn next(&mut self) -> Option<u64> {
        let v = self.words.get(self.pos).copied();
        if v.is_some() {
            self.pos += 1;
        }
        v
    }

    fn take(&mut self, n: usize) -> Option<&'a [u64]> {
        let s = self.words.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.words.len()
    }
}

fn rec_page(stable: u32, page: u32, payload: &[u64]) -> Vec<u64> {
    let mut rec = Vec::with_capacity(4 + payload.len());
    rec.push(TAG_PAGE);
    rec.push(pack_key(stable, page));
    rec.push(payload.len() as u64);
    rec.extend_from_slice(payload);
    seal(rec)
}

fn rec_free(stable: u32, page: u32) -> Vec<u64> {
    seal(vec![TAG_FREE, pack_key(stable, page)])
}

fn rec_commit(lsn: u64) -> Vec<u64> {
    seal(vec![TAG_COMMIT, lsn])
}

fn rec_bind(stable: u32, name: &str) -> Vec<u64> {
    let bytes = name.as_bytes();
    let mut rec = Vec::with_capacity(3 + bytes.len() / 8 + 1);
    rec.push(TAG_BIND);
    rec.push(u64::from(stable));
    rec.push(bytes.len() as u64);
    for c in bytes.chunks(8) {
        let mut w = [0u8; 8];
        for (d, s) in w.iter_mut().zip(c) {
            *d = *s;
        }
        rec.push(u64::from_le_bytes(w));
    }
    seal(rec)
}

/// Append the checksum word that closes a record.
fn seal(mut rec: Vec<u64>) -> Vec<u64> {
    let mut h = Fnv::new();
    h.push_all(&rec);
    rec.push(h.finish());
    rec
}

/// One parsed WAL record.
enum WalItem {
    Page { key: u64, payload: Vec<u64> },
    Free { key: u64 },
    Commit { lsn: u64 },
    Bind { stable: u32, name: String },
}

/// Parse the next record; `None` means end-of-log or a torn/corrupt tail
/// (recovery stops and truncates in either case).
fn next_wal_item(c: &mut Cursor<'_>, block_words: usize) -> Option<WalItem> {
    let start = c.pos;
    let tag = c.next()?;
    let mut h = Fnv::new();
    h.push(tag);
    let item = match tag {
        TAG_PAGE => {
            let key = c.next()?;
            let len = c.next()?;
            if len as usize > block_words {
                return None;
            }
            let payload = c.take(len as usize)?.to_vec();
            h.push(key);
            h.push(len);
            h.push_all(&payload);
            WalItem::Page { key, payload }
        }
        TAG_FREE => {
            let key = c.next()?;
            h.push(key);
            WalItem::Free { key }
        }
        TAG_COMMIT => {
            let lsn = c.next()?;
            h.push(lsn);
            WalItem::Commit { lsn }
        }
        TAG_BIND => {
            let stable = c.next()?;
            let nbytes = c.next()?;
            if nbytes > 4096 {
                return None;
            }
            let nwords = (nbytes as usize).div_ceil(8);
            let name_words = c.take(nwords)?;
            h.push(stable);
            h.push(nbytes);
            h.push_all(name_words);
            let mut bytes = words_to_bytes(name_words);
            bytes.truncate(nbytes as usize);
            let name = String::from_utf8(bytes).ok()?;
            WalItem::Bind {
                stable: stable as u32,
                name,
            }
        }
        _ => return None,
    };
    let crc = c.next()?;
    if crc != h.finish() {
        c.pos = start;
        return None;
    }
    Some(item)
}

// ---------------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------------

/// Location of a committed page image in the data file.
#[derive(Debug, Clone, Copy)]
struct SlotInfo {
    slot: u32,
    lsn: u64,
}

#[derive(Debug)]
struct WalState {
    dir: PathBuf,
    /// Held (flock-style, via `File::try_lock`) for the backend's lifetime:
    /// one directory, one live device. Released when the state drops.
    _lock: File,
    wal_file: File,
    data_file: File,
    block_words: usize,
    /// Stable file names; stable id = index.
    names: Vec<String>,
    /// Runtime [`FileId`] → stable id, rebuilt every open via `bind_file`.
    bindings: HashMap<FileId, u32>,
    /// Logged-but-uncommitted images (`None` = freed); last write wins.
    staged: HashMap<u64, Option<Vec<u64>>>,
    /// Committed images by key.
    committed: HashMap<u64, SlotInfo>,
    free_slots: Vec<u32>,
    slot_count: u32,
    /// Last durable commit.
    lsn: u64,
    /// Last *checkpointed* commit: every batch `≤ ckpt_lsn` has been fsynced
    /// into `data.topk`. This — never the live `lsn` — is what `meta.topk`
    /// records, because recovery skips WAL batches `≤` the meta lsn: writing
    /// the live lsn there would skip replaying batches whose slot writes were
    /// applied but never fsynced.
    ckpt_lsn: u64,
    /// Append offset into the WAL file.
    wal_len: u64,
    stats: DurableStats,
    fault: Option<FaultPlan>,
    /// Once set, every operation fails with this error (a crashed process).
    dead: Option<BackendError>,
}

impl WalState {
    fn slot_bytes(&self) -> u64 {
        ((SLOT_HEADER_WORDS + self.block_words) * 8) as u64
    }

    fn check_dead(&self) -> BackendResult<()> {
        match &self.dead {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Kill the backend with an I/O error; later calls repeat it.
    fn die_io(&mut self, msg: String) -> BackendError {
        let e = BackendError::Io(msg);
        self.dead = Some(e.clone());
        e
    }

    /// Kill the backend with an injected fault; later calls repeat it.
    fn die_injected(&mut self, msg: &str) -> BackendError {
        let e = BackendError::Injected(msg.to_string());
        self.dead = Some(e.clone());
        e
    }

    fn stable_of(&self, file: FileId) -> BackendResult<u32> {
        self.bindings
            .get(&file)
            .copied()
            .ok_or_else(|| BackendError::Io(format!("file {file} was not bound to a durable name")))
    }

    fn note_append(&mut self, bytes: usize) {
        self.wal_len += bytes as u64;
        self.stats.wal_appends += 1;
        self.stats.wal_bytes += bytes as u64;
    }

    /// Append a whole record (the non-hot-path writer; the page-image append
    /// in `put_page` stays inline as the sanctioned log writer).
    fn append_record(&mut self, rec: &[u64]) -> BackendResult<()> {
        let bytes = words_to_bytes(rec);
        if let Err(e) = self.wal_file.write_all_at(&bytes, self.wal_len) {
            return Err(self.die_io(format!("wal append failed: {e}")));
        }
        self.note_append(bytes.len());
        Ok(())
    }

    /// Deliberately write half a record: the torn-tail fault.
    fn tear_tail(&mut self, rec: &[u64]) {
        let bytes = words_to_bytes(rec);
        let half = bytes.len() / 2;
        if let Some(prefix) = bytes.get(..half) {
            let _ = self.wal_file.write_all_at(prefix, self.wal_len);
            let _ = self.wal_file.sync_data();
        }
    }

    fn sync_wal(&mut self) -> BackendResult<()> {
        if let Err(e) = self.wal_file.sync_data() {
            return Err(self.die_io(format!("wal fsync failed: {e}")));
        }
        Ok(())
    }

    /// Write one full slot (header + zero-padded payload).
    fn store_slot(
        &mut self,
        slot: u32,
        state: u64,
        key: u64,
        lsn: u64,
        payload: &[u64],
    ) -> BackendResult<()> {
        let mut words = Vec::with_capacity(SLOT_HEADER_WORDS + self.block_words);
        words.push(state);
        words.push(key);
        words.push(payload.len() as u64);
        words.push(lsn);
        let mut h = Fnv::new();
        h.push_all(&words);
        h.push_all(payload);
        words.push(h.finish());
        words.extend_from_slice(payload);
        words.resize(SLOT_HEADER_WORDS + self.block_words, 0);
        let off = u64::from(slot) * self.slot_bytes();
        if let Err(e) = self.data_file.write_all_at(&words_to_bytes(&words), off) {
            return Err(self.die_io(format!("data pwrite of slot {slot} failed: {e}")));
        }
        self.stats.pwrites += 1;
        Ok(())
    }

    /// Read and validate one slot; `None` for free, torn, or unreadable.
    fn load_slot(&mut self, slot: u32) -> Option<(u64, u64, Vec<u64>)> {
        let mut buf = vec![0u8; self.slot_bytes() as usize];
        self.data_file
            .read_exact_at(&mut buf, u64::from(slot) * self.slot_bytes())
            .ok()?;
        self.stats.preads += 1;
        let words = bytes_to_words(&buf);
        let mut c = Cursor::new(&words);
        let state = c.next()?;
        let key = c.next()?;
        let len = c.next()?;
        let lsn = c.next()?;
        let crc = c.next()?;
        if state != SLOT_LIVE || len as usize > self.block_words {
            return None;
        }
        let payload = c.take(len as usize)?;
        let mut h = Fnv::new();
        h.push_all(&[state, key, len, lsn]);
        h.push_all(payload);
        if h.finish() != crc {
            return None;
        }
        Some((key, lsn, payload.to_vec()))
    }

    fn claim_slot(&mut self) -> u32 {
        match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.slot_count;
                self.slot_count += 1;
                s
            }
        }
    }

    /// Materialize one staged change into the data file at `lsn`.
    fn apply_one(&mut self, key: u64, image: &Option<Vec<u64>>, lsn: u64) -> BackendResult<()> {
        match image {
            Some(payload) => {
                let slot = match self.committed.get(&key) {
                    Some(si) => si.slot,
                    None => self.claim_slot(),
                };
                self.store_slot(slot, SLOT_LIVE, key, lsn, payload)?;
                self.committed.insert(key, SlotInfo { slot, lsn });
            }
            None => {
                if let Some(si) = self.committed.remove(&key) {
                    self.store_slot(si.slot, SLOT_FREE, 0, lsn, &[])?;
                    self.free_slots.push(si.slot);
                }
            }
        }
        Ok(())
    }

    /// Rewrite `meta.topk` atomically (tmp + rename).
    fn persist_meta(&mut self) -> BackendResult<()> {
        let mut text = String::new();
        text.push_str(META_HEADER);
        text.push('\n');
        text.push_str(&format!("block_words {}\n", self.block_words));
        text.push_str(&format!("lsn {}\n", self.ckpt_lsn));
        for name in &self.names {
            text.push_str(&format!("file {name}\n"));
        }
        let tmp = self.dir.join("meta.tmp");
        let fin = self.dir.join("meta.topk");
        let write = || -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_data()?;
            std::fs::rename(&tmp, &fin)
        };
        if let Err(e) = write() {
            return Err(self.die_io(format!("meta rewrite failed: {e}")));
        }
        Ok(())
    }

    /// Commit if staged, fsync data, rewrite meta, truncate the WAL.
    fn checkpoint_locked(&mut self) -> BackendResult<()> {
        if let Err(e) = self.data_file.sync_data() {
            return Err(self.die_io(format!("data fsync failed: {e}")));
        }
        // Only after the data fsync may the meta lsn advance: everything up
        // to `lsn` is now durably applied, so recovery may skip it.
        self.ckpt_lsn = self.lsn;
        self.persist_meta()?;
        let truncate = || -> std::io::Result<()> {
            self.wal_file.set_len(0)?;
            self.wal_file.sync_data()
        };
        if let Err(e) = truncate() {
            return Err(self.die_io(format!("wal truncate failed: {e}")));
        }
        self.wal_len = 0;
        self.stats.checkpoints += 1;
        Ok(())
    }
}

/// Real file-backed block storage with a page-granular write-ahead log.
///
/// One directory holds one device: `meta.topk` + `data.topk` + `wal.topk`
/// (format in the module docs). Geometry (`block_words`) is fixed at
/// creation; reopening with a different [`EmConfig`] geometry is corruption.
#[derive(Debug)]
pub struct FileBackend {
    wal: Mutex<WalState>,
}

impl FileBackend {
    /// Open (or create) the durable device rooted at `dir` and run recovery.
    pub fn open(dir: &Path, config: EmConfig) -> BackendResult<Self> {
        std::fs::create_dir_all(dir)
            .map_err(|e| BackendError::Io(format!("create {}: {e}", dir.display())))?;
        let open_rw = |name: &str| -> BackendResult<File> {
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(dir.join(name))
                .map_err(|e| BackendError::Io(format!("open {name}: {e}")))
        };
        // One directory, one live device: an advisory exclusive lock held
        // for the backend's lifetime. Two devices recovering, truncating and
        // appending to the same WAL would silently corrupt committed state —
        // this turns that into an open error (and is what makes
        // `snapshot_to` fail fast on an index's own directory). The lock is
        // per open-file-description, so it also rejects a second open from
        // within the same process, and the kernel releases it when the
        // process dies — a crashed process never bricks its directory.
        let lock = open_rw("lock.topk")?;
        match lock.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(BackendError::Io(format!(
                    "directory {} is already open as a durable device \
                     (lock.topk is held)",
                    dir.display()
                )));
            }
            Err(std::fs::TryLockError::Error(e)) => {
                return Err(BackendError::Io(format!("lock lock.topk: {e}")));
            }
        }
        let meta_path = dir.join("meta.topk");
        let mut block_words = config.block_words;
        let mut lsn = 0;
        let mut names = Vec::new();
        if meta_path.exists() {
            let text = std::fs::read_to_string(&meta_path)
                .map_err(|e| BackendError::Io(format!("read meta.topk: {e}")))?;
            (block_words, lsn, names) = parse_meta(&text)?;
            if block_words != config.block_words {
                return Err(BackendError::Corrupt(format!(
                    "geometry mismatch: directory has block_words={block_words}, \
                     config wants {}",
                    config.block_words
                )));
            }
        }
        let mut st = WalState {
            dir: dir.to_path_buf(),
            _lock: lock,
            wal_file: open_rw("wal.topk")?,
            data_file: open_rw("data.topk")?,
            block_words,
            names,
            bindings: HashMap::new(),
            staged: HashMap::new(),
            committed: HashMap::new(),
            free_slots: Vec::new(),
            slot_count: 0,
            lsn,
            ckpt_lsn: lsn,
            wal_len: 0,
            stats: DurableStats::default(),
            fault: None,
            dead: None,
        };
        recover(&mut st)?;
        Ok(Self {
            wal: Mutex::new(st),
        })
    }
}

fn parse_meta(text: &str) -> BackendResult<(usize, u64, Vec<String>)> {
    let corrupt = |what: &str| BackendError::Corrupt(format!("meta.topk: {what}"));
    let mut lines = text.lines();
    if lines.next() != Some(META_HEADER) {
        return Err(corrupt("bad header"));
    }
    let mut block_words = None;
    let mut lsn = 0;
    let mut names = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.splitn(2, ' ');
        match (it.next(), it.next()) {
            (Some("block_words"), Some(v)) => {
                block_words = Some(v.trim().parse().map_err(|_| corrupt("bad block_words"))?);
            }
            (Some("lsn"), Some(v)) => {
                lsn = v.trim().parse().map_err(|_| corrupt("bad lsn"))?;
            }
            (Some("file"), Some(name)) => names.push(name.to_string()),
            _ => return Err(corrupt("unrecognized line")),
        }
    }
    let block_words = block_words.ok_or_else(|| corrupt("missing block_words"))?;
    Ok((block_words, lsn, names))
}

/// Recovery: scan slots, replay committed WAL batches (idempotent), discard
/// the torn/uncommitted tail, then checkpoint into a clean state.
fn recover(st: &mut WalState) -> BackendResult<()> {
    // 1. Data-file scan: every checksum-valid live slot is a candidate; the
    //    highest lsn per key wins, losers and torn slots become free.
    let data_len = st
        .data_file
        .metadata()
        .map_err(|e| BackendError::Io(format!("stat data.topk: {e}")))?
        .len();
    let nslots = (data_len / st.slot_bytes()) as u32;
    st.slot_count = nslots;
    let mut used = vec![false; nslots as usize];
    for s in 0..nslots {
        let Some((key, lsn, _payload)) = st.load_slot(s) else {
            continue;
        };
        let replace = match st.committed.get(&key) {
            Some(prev) => prev.lsn < lsn,
            None => true,
        };
        if replace {
            if let Some(prev) = st.committed.insert(key, SlotInfo { slot: s, lsn }) {
                if let Some(u) = used.get_mut(prev.slot as usize) {
                    *u = false;
                }
            }
            if let Some(u) = used.get_mut(s as usize) {
                *u = true;
            }
        }
    }
    st.free_slots = used
        .iter()
        .enumerate()
        .filter(|(_, &u)| !u)
        .map(|(i, _)| i as u32)
        .collect();
    st.stats.recovered_pages = st.committed.len() as u64;

    // 2. WAL replay: apply each batch that is closed by a valid commit
    //    record; anything after the last valid commit (torn or uncommitted)
    //    is discarded by the checkpoint's truncation.
    let wal_size = st
        .wal_file
        .metadata()
        .map_err(|e| BackendError::Io(format!("stat wal.topk: {e}")))?
        .len();
    let mut buf = vec![0u8; wal_size as usize];
    st.wal_file
        .read_exact_at(&mut buf, 0)
        .map_err(|e| BackendError::Io(format!("read wal.topk: {e}")))?;
    let words = bytes_to_words(&buf);
    let mut c = Cursor::new(&words);
    let mut pending: Vec<(u64, Option<Vec<u64>>)> = Vec::new();
    while !c.at_end() {
        let Some(item) = next_wal_item(&mut c, st.block_words) else {
            break;
        };
        match item {
            WalItem::Page { key, payload } => pending.push((key, Some(payload))),
            WalItem::Free { key } => pending.push((key, None)),
            WalItem::Bind { stable, name } => {
                let i = stable as usize;
                match st.names.get(i) {
                    Some(existing) if *existing == name => {}
                    None if i == st.names.len() => st.names.push(name),
                    _ => {
                        return Err(BackendError::Corrupt(format!(
                            "wal bind of '{name}' to stable id {stable} conflicts with meta"
                        )))
                    }
                }
            }
            WalItem::Commit { lsn } => {
                if lsn > st.lsn {
                    for (key, image) in &pending {
                        st.apply_one(*key, image, lsn)?;
                    }
                    st.lsn = lsn;
                    st.stats.recovered_commits += 1;
                }
                pending.clear();
            }
        }
    }

    // 3. Collapse into a checkpoint: meta reflects the replayed lsn, the WAL
    //    is truncated (dropping the uncommitted tail), data is fsynced.
    st.checkpoint_locked()
}

impl StorageBackend for FileBackend {
    fn name(&self) -> &'static str {
        "file"
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn bind_file(&self, id: FileId, name: &str) -> BackendResult<()> {
        let mut st = self.wal.lock().unwrap();
        st.check_dead()?;
        let stable = match st.names.iter().position(|n| n == name) {
            Some(p) => p as u32,
            None => {
                let p = st.names.len() as u32;
                st.names.push(name.to_string());
                st.append_record(&rec_bind(p, name))?;
                st.sync_wal()?;
                st.persist_meta()?;
                p
            }
        };
        st.bindings.insert(id, stable);
        Ok(())
    }

    fn pages_of(&self, id: FileId) -> BackendResult<Vec<(u32, Vec<u64>)>> {
        let mut st = self.wal.lock().unwrap();
        st.check_dead()?;
        let stable = st.stable_of(id)?;
        let keys: Vec<u64> = st
            .committed
            .keys()
            .copied()
            .filter(|&k| unpack_key(k).0 == stable)
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let si = match st.committed.get(&key) {
                Some(si) => *si,
                None => continue,
            };
            let (_, page) = unpack_key(key);
            match st.load_slot(si.slot) {
                Some((k, _, payload)) if k == key => out.push((page, payload)),
                _ => {
                    return Err(BackendError::Corrupt(format!(
                        "committed slot {} for page {page} failed validation",
                        si.slot
                    )))
                }
            }
        }
        // Staged overlay (normally empty right after open).
        for (&key, image) in &st.staged {
            let (f, page) = unpack_key(key);
            if f != stable {
                continue;
            }
            out.retain(|(p, _)| *p != page);
            if let Some(payload) = image {
                out.push((page, payload.clone()));
            }
        }
        out.sort_by_key(|(p, _)| *p);
        Ok(out)
    }

    fn put_page(&self, addr: PageAddr, words: &[u64]) -> BackendResult<()> {
        let mut st = self.wal.lock().unwrap();
        st.check_dead()?;
        let stable = st.stable_of(addr.file)?;
        if words.len() > st.block_words {
            let msg = format!(
                "page image of {} words exceeds block capacity {}",
                words.len(),
                st.block_words
            );
            return Err(st.die_io(msg));
        }
        let rec = rec_page(stable, addr.page, words);
        if let Some(plan) = st.fault {
            if let Some(n) = plan.fail_after_appends {
                if st.stats.wal_appends >= n {
                    st.tear_tail(&rec);
                    return Err(st.die_injected("fault: WAL tail torn mid-append"));
                }
            }
        }
        let bytes = words_to_bytes(&rec);
        let off = st.wal_len;
        // audit: allow(lock_order, reason = "the WAL log writer itself: appending the page record is the one sanctioned device write under the wal mutex (DESIGN.md section 10)")
        let wrote = st.wal_file.write_all_at(&bytes, off);
        if let Err(e) = wrote {
            return Err(st.die_io(format!("wal append failed: {e}")));
        }
        st.note_append(bytes.len());
        st.staged
            .insert(pack_key(stable, addr.page), Some(words.to_vec()));
        Ok(())
    }

    fn get_page(&self, addr: PageAddr) -> BackendResult<Option<Vec<u64>>> {
        let mut st = self.wal.lock().unwrap();
        st.check_dead()?;
        let stable = st.stable_of(addr.file)?;
        let key = pack_key(stable, addr.page);
        if let Some(image) = st.staged.get(&key) {
            return Ok(image.clone());
        }
        let si = match st.committed.get(&key) {
            Some(si) => *si,
            None => return Ok(None),
        };
        match st.load_slot(si.slot) {
            Some((k, _, payload)) if k == key => Ok(Some(payload)),
            _ => Err(BackendError::Corrupt(format!(
                "committed slot {} for {addr:?} failed validation",
                si.slot
            ))),
        }
    }

    fn drop_page(&self, addr: PageAddr) -> BackendResult<()> {
        let mut st = self.wal.lock().unwrap();
        st.check_dead()?;
        let stable = st.stable_of(addr.file)?;
        let key = pack_key(stable, addr.page);
        st.append_record(&rec_free(stable, addr.page))?;
        st.staged.insert(key, None);
        Ok(())
    }

    fn commit(&self) -> BackendResult<u64> {
        let mut st = self.wal.lock().unwrap();
        st.check_dead()?;
        if st.staged.is_empty() {
            return Ok(st.lsn);
        }
        let next = st.lsn + 1;
        let doomed = st
            .fault
            .and_then(|p| p.fail_after_commits)
            .is_some_and(|n| st.stats.commits >= n);
        let phase = st.fault.map(|p| p.phase);
        if doomed && phase == Some(KillPhase::BeforeWalFsync) {
            return Err(st.die_injected("fault: killed before the commit record reached the WAL"));
        }
        st.append_record(&rec_commit(next))?;
        st.sync_wal()?;
        if doomed && phase == Some(KillPhase::AfterWalFsync) {
            return Err(st.die_injected("fault: killed after WAL fsync, before apply"));
        }
        let staged = std::mem::take(&mut st.staged);
        if doomed && phase == Some(KillPhase::MidApply) {
            for (key, image) in staged.iter().take(staged.len() / 2) {
                st.apply_one(*key, image, next)?;
            }
            return Err(st.die_injected("fault: killed halfway through applying the batch"));
        }
        for (key, image) in &staged {
            st.apply_one(*key, image, next)?;
        }
        st.lsn = next;
        st.stats.commits += 1;
        Ok(next)
    }

    fn checkpoint(&self) -> BackendResult<()> {
        self.commit()?;
        let mut st = self.wal.lock().unwrap();
        st.check_dead()?;
        st.checkpoint_locked()
    }

    fn arm_fault(&self, plan: FaultPlan) {
        self.wal.lock().unwrap().fault = Some(plan);
    }

    fn durable_stats(&self) -> DurableStats {
        self.wal.lock().unwrap().stats
    }
}

// ---------------------------------------------------------------------------
// ThreadPoolBackend
// ---------------------------------------------------------------------------

/// An I/O request for the completion-model shim.
#[derive(Debug)]
pub enum IoRequest {
    /// Stage a page image.
    Put(PageAddr, Vec<u64>),
    /// Read a page image.
    Get(PageAddr),
    /// Stage a page drop.
    Discard(PageAddr),
    /// Commit all staged changes.
    Commit,
    /// Checkpoint the log.
    Checkpoint,
}

/// Completion of an [`IoRequest`].
#[derive(Debug, PartialEq, Eq)]
pub enum IoOutcome {
    /// The request finished with nothing to return.
    Done,
    /// `Get` finished with this image.
    Page(Option<Vec<u64>>),
    /// `Commit` finished at this log sequence number.
    Committed(u64),
}

/// Handle to a submitted request; redeem with [`ThreadPoolBackend::poll`] or
/// [`ThreadPoolBackend::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

#[derive(Debug)]
struct PoolCore {
    jobs: Mutex<VecDeque<(u64, IoRequest)>>,
    job_ready: Condvar,
    done: Mutex<HashMap<u64, BackendResult<IoOutcome>>>,
    done_ready: Condvar,
    next_ticket: AtomicU64,
    shutdown: AtomicBool,
}

fn run_request(base: &dyn StorageBackend, req: IoRequest) -> BackendResult<IoOutcome> {
    match req {
        IoRequest::Put(addr, words) => base.put_page(addr, &words).map(|()| IoOutcome::Done),
        IoRequest::Get(addr) => base.get_page(addr).map(IoOutcome::Page),
        IoRequest::Discard(addr) => base.drop_page(addr).map(|()| IoOutcome::Done),
        IoRequest::Commit => base.commit().map(IoOutcome::Committed),
        IoRequest::Checkpoint => base.checkpoint().map(|()| IoOutcome::Done),
    }
}

fn worker_loop(core: Arc<PoolCore>, base: Arc<dyn StorageBackend>) {
    loop {
        let job = {
            let mut jobs = core.jobs.lock().unwrap();
            loop {
                if let Some(j) = jobs.pop_front() {
                    break j;
                }
                if core.shutdown.load(Ordering::Acquire) {
                    return;
                }
                jobs = core
                    .job_ready
                    .wait(jobs)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let (ticket, req) = job;
        let outcome = run_request(&*base, req);
        core.done.lock().unwrap().insert(ticket, outcome);
        core.done_ready.notify_all();
    }
}

/// A completion-model shim over any backend: submit/poll/wait over a small
/// worker pool. Establishes the asynchronous device API an io_uring backend
/// will later implement (ROADMAP open item 3 follow-up).
#[derive(Debug)]
pub struct ThreadPoolBackend {
    base: Arc<dyn StorageBackend>,
    core: Arc<PoolCore>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ThreadPoolBackend {
    /// Wrap `base`, executing requests on `workers` threads (min 1).
    pub fn new(base: Arc<dyn StorageBackend>, workers: usize) -> Self {
        let core = Arc::new(PoolCore {
            jobs: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            done: Mutex::new(HashMap::new()),
            done_ready: Condvar::new(),
            next_ticket: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let core = Arc::clone(&core);
                let base = Arc::clone(&base);
                std::thread::spawn(move || worker_loop(core, base))
            })
            .collect();
        Self {
            base,
            core,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueue a request; the returned ticket redeems its completion.
    pub fn submit(&self, req: IoRequest) -> Ticket {
        let t = self.core.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.core.jobs.lock().unwrap().push_back((t, req));
        self.core.job_ready.notify_one();
        Ticket(t)
    }

    /// Non-blocking: the completion if it is ready.
    pub fn poll(&self, ticket: Ticket) -> Option<BackendResult<IoOutcome>> {
        self.core.done.lock().unwrap().remove(&ticket.0)
    }

    /// Block until the completion is ready.
    pub fn wait(&self, ticket: Ticket) -> BackendResult<IoOutcome> {
        let mut done = self.core.done.lock().unwrap();
        loop {
            if let Some(r) = done.remove(&ticket.0) {
                return r;
            }
            done = self
                .core
                .done_ready
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for ThreadPoolBackend {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.core.job_ready.notify_all();
        let mut ws = self.workers.lock().unwrap();
        for w in ws.drain(..) {
            let _ = w.join();
        }
    }
}

impl StorageBackend for ThreadPoolBackend {
    fn name(&self) -> &'static str {
        "threadpool"
    }

    fn is_durable(&self) -> bool {
        self.base.is_durable()
    }

    fn bind_file(&self, id: FileId, name: &str) -> BackendResult<()> {
        self.base.bind_file(id, name)
    }

    fn pages_of(&self, id: FileId) -> BackendResult<Vec<(u32, Vec<u64>)>> {
        self.base.pages_of(id)
    }

    fn put_page(&self, addr: PageAddr, words: &[u64]) -> BackendResult<()> {
        match self.wait(self.submit(IoRequest::Put(addr, words.to_vec())))? {
            IoOutcome::Done => Ok(()),
            other => Err(BackendError::Io(format!("unexpected completion {other:?}"))),
        }
    }

    fn get_page(&self, addr: PageAddr) -> BackendResult<Option<Vec<u64>>> {
        match self.wait(self.submit(IoRequest::Get(addr)))? {
            IoOutcome::Page(p) => Ok(p),
            other => Err(BackendError::Io(format!("unexpected completion {other:?}"))),
        }
    }

    fn drop_page(&self, addr: PageAddr) -> BackendResult<()> {
        match self.wait(self.submit(IoRequest::Discard(addr)))? {
            IoOutcome::Done => Ok(()),
            other => Err(BackendError::Io(format!("unexpected completion {other:?}"))),
        }
    }

    fn commit(&self) -> BackendResult<u64> {
        match self.wait(self.submit(IoRequest::Commit))? {
            IoOutcome::Committed(lsn) => Ok(lsn),
            other => Err(BackendError::Io(format!("unexpected completion {other:?}"))),
        }
    }

    fn checkpoint(&self) -> BackendResult<()> {
        match self.wait(self.submit(IoRequest::Checkpoint))? {
            IoOutcome::Done => Ok(()),
            other => Err(BackendError::Io(format!("unexpected completion {other:?}"))),
        }
    }

    fn arm_fault(&self, plan: FaultPlan) {
        self.base.arm_fault(plan);
    }

    fn durable_stats(&self) -> DurableStats {
        self.base.durable_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let d =
            std::env::temp_dir().join(format!("emsim-backend-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn cfg() -> EmConfig {
        EmConfig::small()
    }

    fn addr(page: u32) -> PageAddr {
        PageAddr { file: 0, page }
    }

    #[test]
    fn file_backend_commit_survives_reopen() {
        let dir = scratch("roundtrip");
        {
            let b = FileBackend::open(&dir, cfg()).unwrap();
            b.bind_file(0, "nodes").unwrap();
            b.put_page(addr(0), &[1, 2, 3]).unwrap();
            b.put_page(addr(7), &[9]).unwrap();
            assert_eq!(b.commit().unwrap(), 1);
        }
        let b = FileBackend::open(&dir, cfg()).unwrap();
        b.bind_file(0, "nodes").unwrap();
        assert_eq!(b.get_page(addr(0)).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(b.get_page(addr(7)).unwrap(), Some(vec![9]));
        assert_eq!(b.get_page(addr(3)).unwrap(), None);
        assert_eq!(
            b.pages_of(0).unwrap(),
            vec![(0, vec![1, 2, 3]), (7, vec![9])]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_pages_vanish_on_reopen() {
        let dir = scratch("uncommitted");
        {
            let b = FileBackend::open(&dir, cfg()).unwrap();
            b.bind_file(0, "nodes").unwrap();
            b.put_page(addr(0), &[1]).unwrap();
            b.commit().unwrap();
            b.put_page(addr(1), &[2]).unwrap();
            // No commit: page 1 must not survive.
        }
        let b = FileBackend::open(&dir, cfg()).unwrap();
        b.bind_file(0, "nodes").unwrap();
        assert_eq!(b.get_page(addr(0)).unwrap(), Some(vec![1]));
        assert_eq!(b.get_page(addr(1)).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_and_overwrite_commit_correctly() {
        let dir = scratch("dropwrite");
        {
            let b = FileBackend::open(&dir, cfg()).unwrap();
            b.bind_file(0, "nodes").unwrap();
            b.put_page(addr(0), &[1]).unwrap();
            b.put_page(addr(1), &[2]).unwrap();
            b.commit().unwrap();
            b.drop_page(addr(0)).unwrap();
            b.put_page(addr(1), &[2, 2]).unwrap();
            b.commit().unwrap();
        }
        let b = FileBackend::open(&dir, cfg()).unwrap();
        b.bind_file(0, "nodes").unwrap();
        assert_eq!(b.get_page(addr(0)).unwrap(), None);
        assert_eq!(b.get_page(addr(1)).unwrap(), Some(vec![2, 2]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_before_wal_fsync_loses_only_the_doomed_batch() {
        let dir = scratch("killbefore");
        {
            let b = FileBackend::open(&dir, cfg()).unwrap();
            b.bind_file(0, "nodes").unwrap();
            b.put_page(addr(0), &[1]).unwrap();
            b.commit().unwrap();
            b.arm_fault(FaultPlan::kill_at_commit(1, KillPhase::BeforeWalFsync));
            b.put_page(addr(1), &[2]).unwrap();
            assert!(matches!(b.commit(), Err(BackendError::Injected(_))));
            // Dead: everything after the kill fails the same way.
            assert!(matches!(
                b.put_page(addr(2), &[3]),
                Err(BackendError::Injected(_))
            ));
        }
        let b = FileBackend::open(&dir, cfg()).unwrap();
        b.bind_file(0, "nodes").unwrap();
        assert_eq!(b.get_page(addr(0)).unwrap(), Some(vec![1]));
        assert_eq!(
            b.get_page(addr(1)).unwrap(),
            None,
            "doomed batch resurrected"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_after_wal_fsync_replays_the_batch() {
        for phase in [KillPhase::AfterWalFsync, KillPhase::MidApply] {
            let dir = scratch("killafter");
            {
                let b = FileBackend::open(&dir, cfg()).unwrap();
                b.bind_file(0, "nodes").unwrap();
                b.arm_fault(FaultPlan::kill_at_commit(0, phase));
                for p in 0..6 {
                    b.put_page(addr(p), &[u64::from(p) + 10]).unwrap();
                }
                assert!(matches!(b.commit(), Err(BackendError::Injected(_))));
            }
            let b = FileBackend::open(&dir, cfg()).unwrap();
            b.bind_file(0, "nodes").unwrap();
            for p in 0..6 {
                assert_eq!(
                    b.get_page(addr(p)).unwrap(),
                    Some(vec![u64::from(p) + 10]),
                    "{phase:?}: committed page {p} lost"
                );
            }
            assert!(b.durable_stats().recovered_commits >= 1);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn torn_wal_tail_is_discarded() {
        let dir = scratch("torn");
        {
            let b = FileBackend::open(&dir, cfg()).unwrap();
            b.bind_file(0, "nodes").unwrap();
            b.put_page(addr(0), &[1]).unwrap();
            b.commit().unwrap();
            // bind(1) + page(1) + commit(1) = 3 appends so far.
            b.arm_fault(FaultPlan::tear_wal_after(3));
            assert!(matches!(
                b.put_page(addr(1), &[2]),
                Err(BackendError::Injected(_))
            ));
        }
        let b = FileBackend::open(&dir, cfg()).unwrap();
        b.bind_file(0, "nodes").unwrap();
        assert_eq!(b.get_page(addr(0)).unwrap(), Some(vec![1]));
        assert_eq!(b.get_page(addr(1)).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_open_of_a_live_directory_is_refused() {
        let dir = scratch("lock");
        let first = FileBackend::open(&dir, cfg()).unwrap();
        // Held lock: a concurrent device (same process or another — the
        // advisory lock is per open-file-description) must be turned away.
        match FileBackend::open(&dir, cfg()) {
            Err(BackendError::Io(msg)) => assert!(msg.contains("lock.topk"), "{msg}"),
            other => panic!("second open must fail with Io, got {other:?}"),
        }
        drop(first);
        // Released on drop: reopening afterwards works.
        let again = FileBackend::open(&dir, cfg()).unwrap();
        drop(again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_lsn_stays_at_the_checkpoint_across_binds() {
        let dir = scratch("bindlsn");
        {
            let b = FileBackend::open(&dir, cfg()).unwrap();
            b.bind_file(0, "nodes").unwrap();
            b.put_page(addr(0), &[1, 2]).unwrap();
            assert_eq!(b.commit().unwrap(), 1);
            // Binding a new name rewrites meta.topk; the recorded lsn must be
            // the last *checkpointed* commit (0 — only recovery's checkpoint
            // ran), not the live commit lsn (1): otherwise recovery would
            // skip replaying batch 1, whose slot writes were never fsynced.
            b.bind_file(1, "extra").unwrap();
            let meta = std::fs::read_to_string(dir.join("meta.topk")).unwrap();
            assert!(
                meta.lines().any(|l| l == "lsn 0"),
                "meta must hold the checkpointed lsn, got:\n{meta}"
            );
            // Crash here (no checkpoint).
        }
        let b = FileBackend::open(&dir, cfg()).unwrap();
        b.bind_file(0, "nodes").unwrap();
        assert_eq!(b.get_page(addr(0)).unwrap(), Some(vec![1, 2]));
        assert!(
            b.durable_stats().recovered_commits >= 1,
            "batch 1 must be replayed from the WAL on reopen"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn geometry_mismatch_is_corruption() {
        let dir = scratch("geom");
        {
            let b = FileBackend::open(&dir, EmConfig::new(64, 16 * 64)).unwrap();
            b.checkpoint().unwrap();
        }
        let err = FileBackend::open(&dir, EmConfig::new(128, 16 * 128));
        assert!(matches!(err, Err(BackendError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stable_ids_survive_reopen_under_different_open_order() {
        let dir = scratch("stable");
        {
            let b = FileBackend::open(&dir, cfg()).unwrap();
            b.bind_file(0, "alpha").unwrap();
            b.bind_file(1, "beta").unwrap();
            b.put_page(PageAddr { file: 0, page: 0 }, &[11]).unwrap();
            b.put_page(PageAddr { file: 1, page: 0 }, &[22]).unwrap();
            b.commit().unwrap();
        }
        // Reopen with the runtime ids swapped: names must still resolve.
        let b = FileBackend::open(&dir, cfg()).unwrap();
        b.bind_file(5, "beta").unwrap();
        b.bind_file(9, "alpha").unwrap();
        assert_eq!(
            b.get_page(PageAddr { file: 5, page: 0 }).unwrap(),
            Some(vec![22])
        );
        assert_eq!(
            b.get_page(PageAddr { file: 9, page: 0 }).unwrap(),
            Some(vec![11])
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn threadpool_shim_completes_requests() {
        let dir = scratch("pool");
        let file = Arc::new(FileBackend::open(&dir, cfg()).unwrap());
        let pool = ThreadPoolBackend::new(file, 3);
        pool.bind_file(0, "nodes").unwrap();
        let tickets: Vec<Ticket> = (0..16)
            .map(|p| pool.submit(IoRequest::Put(addr(p), vec![u64::from(p)])))
            .collect();
        for t in tickets {
            assert_eq!(pool.wait(t).unwrap(), IoOutcome::Done);
        }
        assert!(matches!(
            pool.wait(pool.submit(IoRequest::Commit)).unwrap(),
            IoOutcome::Committed(_)
        ));
        let t = pool.submit(IoRequest::Get(addr(7)));
        assert_eq!(pool.wait(t).unwrap(), IoOutcome::Page(Some(vec![7])));
        drop(pool);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn threadpool_backend_trait_delegates() {
        let dir = scratch("pooltrait");
        let file = Arc::new(FileBackend::open(&dir, cfg()).unwrap());
        let pool = ThreadPoolBackend::new(file, 2);
        assert!(pool.is_durable());
        pool.bind_file(0, "nodes").unwrap();
        pool.put_page(addr(0), &[5]).unwrap();
        assert_eq!(pool.commit().unwrap(), 1);
        assert_eq!(pool.get_page(addr(0)).unwrap(), Some(vec![5]));
        assert!(pool.durable_stats().commits >= 1);
        drop(pool);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ram_backend_is_a_noop() {
        let b = RamBackend;
        assert!(!b.is_durable());
        b.put_page(addr(0), &[1]).unwrap();
        assert_eq!(b.get_page(addr(0)).unwrap(), None);
        assert_eq!(b.commit().unwrap(), 0);
    }
}
