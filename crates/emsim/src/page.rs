//! The [`Page`] trait: every node type stored in a [`BlockFile`](crate::BlockFile)
//! reports its size in machine words so the simulator can enforce the block
//! capacity `B`.

/// A value that can be stored in one disk block.
///
/// Implementations must return the number of words the value would occupy when
/// laid out on disk. The simulator checks `words() ≤ B` whenever the page is
/// written; violations are counted in
/// [`IoStats::capacity_violations`](crate::IoStats::capacity_violations) and
/// panic in debug builds, because a node layout that does not fit in a block
/// breaks every I/O bound built on top of it.
pub trait Page {
    /// Size of the page in machine words.
    fn words(&self) -> usize;
}

/// A [`Page`] with a machine-word byte representation, so it can live in a
/// durable [`StorageBackend`](crate::StorageBackend).
///
/// Most node types stay RAM-only ([`Page`] alone) — the engine's durability
/// is logical (an operation journal, see `topk-core`'s `DurableStore`), so
/// only the journal's own page type needs a wire form. The contract is a
/// strict round-trip: `decode(encode(p)) == p`, and `encode` must emit at
/// most `words()` words (a durable page still has to fit one block).
pub trait PersistPage: Page + Sized {
    /// Append this page's on-disk image to `out`.
    fn encode(&self, out: &mut Vec<u64>);

    /// Rebuild a page from its on-disk image; `None` means corruption.
    fn decode(words: &[u64]) -> Option<Self>;
}

/// Free-function form of [`PersistPage::encode`] (storable as a plain `fn`
/// pointer inside the non-generic parts of [`BlockFile`](crate::BlockFile)).
pub fn encode_page<P: PersistPage>(page: &P) -> Vec<u64> {
    let mut out = Vec::with_capacity(page.words());
    page.encode(&mut out);
    out
}

/// Helper: number of words needed to store `n` entries of `entry_words` words
/// each plus a fixed header.
pub fn entries_words(header_words: usize, n: usize, entry_words: usize) -> usize {
    header_words + n * entry_words
}

/// Helper: how many entries of `entry_words` words fit in a block of
/// `block_words` words after reserving `header_words`, never less than
/// `min_entries` so that degenerate test configurations still work.
pub fn entries_per_block(
    block_words: usize,
    header_words: usize,
    entry_words: usize,
    min_entries: usize,
) -> usize {
    let usable = block_words.saturating_sub(header_words);
    (usable / entry_words.max(1)).max(min_entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_per_block_reserves_header() {
        assert_eq!(entries_per_block(64, 4, 2, 1), 30);
        assert_eq!(entries_per_block(64, 0, 2, 1), 32);
        // Degenerate: never below the minimum.
        assert_eq!(entries_per_block(8, 8, 2, 4), 4);
    }

    #[test]
    fn entries_words_adds_header() {
        assert_eq!(entries_words(3, 10, 2), 23);
    }
}
