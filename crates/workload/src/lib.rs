//! # workload — deterministic workload generators for the experiments
//!
//! Everything takes an explicit seed so that every row of EXPERIMENTS.md can
//! be regenerated exactly.

use epst::Point;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Distribution of the coordinates and scores of generated points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointDistribution {
    /// Coordinates and scores are independent random permutations (the
    /// default workload of every experiment).
    Uniform,
    /// Scores increase with the coordinate (correlated; the top-k of any range
    /// clusters at its right end).
    Correlated,
    /// Scores decrease with the coordinate (anti-correlated).
    AntiCorrelated,
    /// Points arrive in coordinate order (adversarial for rebalancing: every
    /// insert hits the rightmost leaf).
    SortedInsertions,
    /// Coordinates concentrate in a few clusters (skewed ranges).
    Clustered,
}

/// Generator of point sets with distinct coordinates and distinct scores.
#[derive(Debug, Clone)]
pub struct PointGen {
    /// Distribution to draw from.
    pub distribution: PointDistribution,
    /// Seed for reproducibility.
    pub seed: u64,
}

impl PointGen {
    /// A uniform generator with the given seed.
    pub fn uniform(seed: u64) -> Self {
        Self {
            distribution: PointDistribution::Uniform,
            seed,
        }
    }

    /// Generate `n` points. Coordinates are a permutation of
    /// `{1·3+1, …, n·3+1}` (so range endpoints always fall between points) and
    /// scores are a permutation of `{1·7+5, …}` — both distinct by
    /// construction.
    pub fn generate(&self, n: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut xs: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        let mut scores: Vec<u64> = (0..n as u64).map(|i| i * 7 + 5).collect();
        match self.distribution {
            PointDistribution::Uniform => {
                xs.shuffle(&mut rng);
                scores.shuffle(&mut rng);
            }
            PointDistribution::Correlated => {
                // Mild noise on top of a monotone relation.
                xs.shuffle(&mut rng);
                xs.sort_unstable();
                for i in 1..scores.len() {
                    if rng.gen_bool(0.1) {
                        scores.swap(i, i - 1);
                    }
                }
            }
            PointDistribution::AntiCorrelated => {
                xs.sort_unstable();
                scores.reverse();
            }
            PointDistribution::SortedInsertions => {
                scores.shuffle(&mut rng);
            }
            PointDistribution::Clustered => {
                let clusters = 8u64;
                xs = (0..n as u64)
                    .map(|i| {
                        let c = i % clusters;
                        c * 1_000_000 + (i / clusters) * 3 + 1
                    })
                    .collect();
                xs.shuffle(&mut rng);
                scores.shuffle(&mut rng);
            }
        }
        xs.into_iter()
            .zip(scores)
            .map(|(x, score)| Point { x, score })
            .collect()
    }
}

/// Disjoint coordinate territories for multi-writer workloads: territory
/// `t` owns `x ∈ [t·span, (t+1)·span)`, so writers assigned distinct
/// territories never collide on coordinates — and, under a range-sharded
/// index, land on distinct shards. Returns `(span, territories)`; each
/// territory holds `per` points, coordinates shuffled within the territory,
/// scores globally distinct across all territories.
pub fn territories(seed: u64, count: usize, per: usize) -> (u64, Vec<Vec<Point>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Twice the room the points need, so fresh inserts fit inside the span.
    let span = (per as u64) * 6 + 8;
    let territories = (0..count as u64)
        .map(|t| {
            let mut xs: Vec<u64> = (0..per as u64).map(|i| t * span + i * 3 + 1).collect();
            let mut scores: Vec<u64> = (0..per as u64)
                .map(|i| (t + i * count as u64) * 7 + 5)
                .collect();
            xs.shuffle(&mut rng);
            scores.shuffle(&mut rng);
            xs.into_iter()
                .zip(scores)
                .map(|(x, score)| Point { x, score })
                .collect()
        })
        .collect();
    (span, territories)
}

/// A top-k range query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Lower end of the range.
    pub x1: u64,
    /// Upper end of the range.
    pub x2: u64,
    /// Number of results requested.
    pub k: usize,
}

/// Generator of queries with controlled selectivity and `k`.
#[derive(Debug, Clone)]
pub struct QueryGen {
    /// Fraction of the key domain each range covers, in `(0, 1]`.
    pub selectivity: f64,
    /// The `k` to request.
    pub k: usize,
    /// Seed.
    pub seed: u64,
}

impl QueryGen {
    /// Create a generator.
    pub fn new(selectivity: f64, k: usize, seed: u64) -> Self {
        Self {
            selectivity: selectivity.clamp(1e-6, 1.0),
            k,
            seed,
        }
    }

    /// Generate `count` queries over the coordinate domain of `points`.
    pub fn generate(&self, points: &[Point], count: usize) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let min = points.iter().map(|p| p.x).min().unwrap_or(0);
        let max = points.iter().map(|p| p.x).max().unwrap_or(1);
        let span = (max - min).max(1);
        let width = ((span as f64) * self.selectivity).max(1.0) as u64;
        (0..count)
            .map(|_| {
                let x1 = rng.gen_range(min..=max.saturating_sub(width).max(min));
                Query {
                    x1,
                    x2: x1 + width,
                    k: self.k,
                }
            })
            .collect()
    }
}

/// One operation of a mixed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert this point.
    Insert(Point),
    /// Delete this (previously inserted) point.
    Delete(Point),
    /// Run this query.
    Query(Query),
}

/// Generator of mixed update/query traces.
#[derive(Debug, Clone)]
pub struct TraceGen {
    /// Fraction of operations that are inserts.
    pub insert_frac: f64,
    /// Fraction of operations that are deletes.
    pub delete_frac: f64,
    /// `k` used by the queries in the trace.
    pub k: usize,
    /// Selectivity of the queries in the trace.
    pub selectivity: f64,
    /// Seed.
    pub seed: u64,
}

impl TraceGen {
    /// Create a generator; the remaining fraction of operations are queries.
    pub fn new(insert_frac: f64, delete_frac: f64, k: usize, selectivity: f64, seed: u64) -> Self {
        assert!(insert_frac + delete_frac <= 1.0);
        Self {
            insert_frac,
            delete_frac,
            k,
            selectivity,
            seed,
        }
    }

    /// Generate a trace of `ops` operations, starting from the preloaded
    /// `initial` points (which are assumed to already be in the structure).
    pub fn generate(&self, initial: &[Point], ops: usize) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut live: Vec<Point> = initial.to_vec();
        let mut next_key: u64 = initial
            .iter()
            .map(|p| p.x)
            .max()
            .unwrap_or(0)
            .max(initial.iter().map(|p| p.score).max().unwrap_or(0))
            + 1;
        let domain_max = live.iter().map(|p| p.x).max().unwrap_or(1_000);
        let width = ((domain_max as f64) * self.selectivity).max(1.0) as u64;
        let mut out = Vec::with_capacity(ops);
        for _ in 0..ops {
            let r: f64 = rng.gen();
            if r < self.insert_frac || live.is_empty() {
                let p = Point {
                    x: next_key * 3 + 2,
                    score: next_key * 7 + 6,
                };
                next_key += 1;
                live.push(p);
                out.push(Op::Insert(p));
            } else if r < self.insert_frac + self.delete_frac {
                let idx = rng.gen_range(0..live.len());
                let p = live.swap_remove(idx);
                out.push(Op::Delete(p));
            } else {
                let x1 = rng.gen_range(0..=domain_max);
                out.push(Op::Query(Query {
                    x1,
                    x2: x1 + width,
                    k: self.k,
                }));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn points_are_distinct_and_reproducible() {
        for dist in [
            PointDistribution::Uniform,
            PointDistribution::Correlated,
            PointDistribution::AntiCorrelated,
            PointDistribution::SortedInsertions,
            PointDistribution::Clustered,
        ] {
            let g = PointGen {
                distribution: dist,
                seed: 7,
            };
            let a = g.generate(500);
            let b = g.generate(500);
            assert_eq!(a, b, "same seed must reproduce the same points");
            let xs: HashSet<u64> = a.iter().map(|p| p.x).collect();
            let scores: HashSet<u64> = a.iter().map(|p| p.score).collect();
            assert_eq!(xs.len(), 500, "{dist:?}: coordinates must be distinct");
            assert_eq!(scores.len(), 500, "{dist:?}: scores must be distinct");
        }
    }

    #[test]
    fn territories_are_disjoint_and_globally_distinct() {
        let (span, terr) = territories(9, 4, 300);
        assert_eq!(terr.len(), 4);
        let mut xs = HashSet::new();
        let mut scores = HashSet::new();
        for (t, points) in terr.iter().enumerate() {
            assert_eq!(points.len(), 300);
            for p in points {
                let lo = t as u64 * span;
                assert!(p.x >= lo && p.x < lo + span, "territory {t} leaked {p:?}");
                assert!(xs.insert(p.x), "duplicate coordinate {}", p.x);
                assert!(scores.insert(p.score), "duplicate score {}", p.score);
            }
        }
        // Reproducible from the seed alone.
        assert_eq!(territories(9, 4, 300).1, terr);
    }

    #[test]
    fn queries_respect_selectivity() {
        let pts = PointGen::uniform(1).generate(1000);
        let qs = QueryGen::new(0.1, 10, 2).generate(&pts, 50);
        assert_eq!(qs.len(), 50);
        let span = pts.iter().map(|p| p.x).max().unwrap() - pts.iter().map(|p| p.x).min().unwrap();
        for q in qs {
            assert!(q.x2 > q.x1);
            assert!(
                q.x2 - q.x1 <= span / 5,
                "range too wide for 10% selectivity"
            );
            assert_eq!(q.k, 10);
        }
    }

    #[test]
    fn traces_balance_inserts_and_deletes() {
        let pts = PointGen::uniform(3).generate(200);
        let trace = TraceGen::new(0.4, 0.3, 5, 0.2, 9).generate(&pts, 1000);
        let inserts = trace.iter().filter(|o| matches!(o, Op::Insert(_))).count();
        let deletes = trace.iter().filter(|o| matches!(o, Op::Delete(_))).count();
        let queries = trace.iter().filter(|o| matches!(o, Op::Query(_))).count();
        assert_eq!(inserts + deletes + queries, 1000);
        assert!(inserts > 300 && deletes > 200 && queries > 200);
        // Deletes only target live points: replaying them must never delete
        // the same point twice.
        let mut live: HashSet<Point> = pts.iter().copied().collect();
        for op in &trace {
            match op {
                Op::Insert(p) => assert!(live.insert(*p)),
                Op::Delete(p) => assert!(live.remove(p)),
                Op::Query(_) => {}
            }
        }
    }
}
