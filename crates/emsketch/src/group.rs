//! The `(f, l)`-group approximate k-selection structure of Lemma 6.
//!
//! The structure stores an `(f, l)`-group `G = (G_1, …, G_f)` of disjoint score
//! sets and answers: *given a contiguous range of groups `[α1, α2]` and a rank
//! `k`, return a score whose rank in `∪_{i∈[α1,α2]} G_i` lies in `[k, c2·k]`*
//! (or `−∞`), in `O(log_B(f·l))` I/Os; insertions and deletions also cost
//! `O(log_B(f·l))` I/Os amortized.
//!
//! Components (exactly §4.1–§4.4 of the paper):
//!
//! * a **compressed sketch set** — one block holding, for every group, a
//!   logarithmic sketch whose pivots are described by (global rank, local
//!   rank) pairs;
//! * a **compressed prefix set** (Lemma 8) — one block holding the global
//!   ranks of every group's `s = √B·log_B(f·l)` largest elements, used to
//!   repair small-index pivots without B-tree searches;
//! * a B-tree over all of `G` (rank ⇄ element conversions);
//! * a B-tree over `(group, score)` pairs (per-group local selections and
//!   range-maximum queries, standing in for the per-`G_i` B-trees and the
//!   "slightly augmented" B-tree of §3.3).

use emsim::{BlockFile, Device, Page, PageId};

use embtree::{BTree, Entry, GroupScoreEntry};

use crate::compressed::{CompressedSketchSet, PivotEntry, SketchSetCodec};
use crate::prefix::{PrefixCodec, PrefixSet};
use crate::{lemma7, Sketch};

/// Configuration of a [`GroupSelect`] structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSelectConfig {
    /// Number of groups `f`.
    pub f: usize,
    /// Maximum number of elements a group may hold (`c2·l` in the §3.3 usage).
    pub l_cap: usize,
    /// Prefix length `s`; `None` uses the paper's `√B·log_B(f·l)`.
    pub prefix_cap: Option<usize>,
}

impl GroupSelectConfig {
    /// A configuration for `f` groups of at most `l_cap` elements.
    pub fn new(f: usize, l_cap: usize) -> Self {
        Self {
            f: f.max(1),
            l_cap: l_cap.max(2),
            prefix_cap: None,
        }
    }

    fn resolved_prefix_cap(&self, block_words: usize) -> usize {
        match self.prefix_cap {
            Some(s) => s.max(1),
            None => {
                let fl = (self.f * self.l_cap).max(2);
                let s = (block_words as f64).sqrt() * emsim::log_b(block_words, fl);
                (s.ceil() as usize).clamp(2, self.l_cap)
            }
        }
    }
}

/// One-block page holding a bit-packed structure plus the per-group sizes
/// (the sizes take `f/2` words and ride along in the same block).
#[derive(Debug, Clone)]
struct PackedPage {
    words: Vec<u64>,
    sizes: Vec<u32>,
}

impl Page for PackedPage {
    fn words(&self) -> usize {
        1 + self.words.len() + self.sizes.len().div_ceil(2)
    }
}

/// The Lemma 6 structure. See the module docs.
pub struct GroupSelect {
    config: GroupSelectConfig,
    prefix_cap: usize,
    codec: SketchSetCodec,
    prefix_codec: PrefixCodec,
    /// B-tree over every score in `G`.
    global: BTree<u64>,
    /// B-tree over `(group, score)`.
    groups: BTree<GroupScoreEntry>,
    pages: BlockFile<PackedPage>,
    sketch_page: PageId,
    prefix_page: PageId,
}

impl GroupSelect {
    /// Create an empty structure on `device`.
    pub fn new(device: &Device, name: &str, config: GroupSelectConfig) -> Self {
        let block_words = device.block_words();
        let codec = SketchSetCodec::new(config.f, config.l_cap);
        let prefix_cap = config.resolved_prefix_cap(block_words);
        let prefix_codec = PrefixCodec::new(config.f, config.l_cap, prefix_cap);
        let global = BTree::new(device, &format!("{name}.G"));
        let groups = BTree::new(device, &format!("{name}.Gi"));
        let pages = device.open_file::<PackedPage>(&format!("{name}.packed"));
        let empty_sketch = CompressedSketchSet::empty(config.f).encode(&codec);
        let sketch_page = pages.alloc(PackedPage {
            words: empty_sketch,
            sizes: vec![0; config.f],
        });
        let empty_prefix = PrefixSet::empty(config.f).encode(&prefix_codec);
        let prefix_page = pages.alloc(PackedPage {
            words: empty_prefix,
            sizes: Vec::new(),
        });
        Self {
            config,
            prefix_cap,
            codec,
            prefix_codec,
            global,
            groups,
            pages,
            sketch_page,
            prefix_page,
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.config.f
    }

    /// Total number of stored scores.
    pub fn len(&self) -> u64 {
        self.global.len()
    }

    /// Whether the structure holds no scores.
    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }

    /// Number of scores currently in `group`.
    pub fn group_len(&self, group: usize) -> u64 {
        self.pages.with(self.sketch_page, |p| p.sizes[group] as u64)
    }

    /// Space in blocks.
    pub fn space_blocks(&self) -> usize {
        self.global.space_blocks() + self.groups.space_blocks() + self.pages.live_pages()
    }

    /// The prefix length `s` in use.
    pub fn prefix_cap(&self) -> usize {
        self.prefix_cap
    }

    // ----- helpers -----

    fn group_bounds(group: usize) -> (GroupScoreEntry, GroupScoreEntry) {
        (
            GroupScoreEntry {
                group: group as u64,
                score: 0,
            },
            GroupScoreEntry {
                group: group as u64,
                score: u64::MAX,
            },
        )
    }

    /// The score of the element with the given local rank (1-based, rank 1 is
    /// the largest) in `group`.
    fn local_select(&self, group: usize, local_rank: u64) -> Option<u64> {
        let (lo, hi) = Self::group_bounds(group);
        let size = self.groups.count_range(lo.key(), hi.key());
        if local_rank == 0 || local_rank > size {
            return None;
        }
        let before = self.groups.count_lt(lo.key());
        let idx_asc = before + (size - local_rank + 1);
        self.groups.select_asc(idx_asc).map(|e| e.score)
    }

    /// Global rank (in all of `G`) of `score`, assuming it is present.
    fn global_rank_of(&self, score: u64) -> u64 {
        self.global.count_ge(score)
    }

    /// Global rank → element conversion via the B-tree on `G` (§4.1).
    fn element_of_global_rank(&self, rank: u64) -> Option<u64> {
        self.global.select_desc(rank)
    }

    fn load_sketch(&self) -> (CompressedSketchSet, Vec<u32>) {
        self.pages.with(self.sketch_page, |p| {
            (
                CompressedSketchSet::decode(&self.codec, &p.words),
                p.sizes.clone(),
            )
        })
    }

    fn store_sketch(&self, set: &CompressedSketchSet, sizes: &[u32]) {
        let words = set.encode(&self.codec);
        self.pages.with_mut(self.sketch_page, |p| {
            p.words = words;
            p.sizes = sizes.to_vec();
        });
    }

    fn load_prefix(&self) -> PrefixSet {
        self.pages.with(self.prefix_page, |p| {
            PrefixSet::decode(&self.prefix_codec, &p.words)
        })
    }

    fn store_prefix(&self, prefix: &PrefixSet) {
        let words = prefix.encode(&self.prefix_codec);
        self.pages.with_mut(self.prefix_page, |p| p.words = words);
    }

    /// Global rank of the element of `group` with the given local rank, using
    /// the prefix block when the rank is small (the Lemma 8 fast path) and the
    /// B-trees otherwise.
    fn global_rank_of_local(
        &self,
        prefix: &PrefixSet,
        group: usize,
        local_rank: u64,
    ) -> Option<u64> {
        if local_rank as usize <= self.prefix_cap {
            if let Some(r) = prefix.global_rank(group, local_rank) {
                return Some(r);
            }
        }
        let score = self.local_select(group, local_rank)?;
        Some(self.global_rank_of(score))
    }

    /// Repair every pivot of `group` whose local rank drifted out of its
    /// window, and make the pivot count match the group size.
    fn repair_group_sketch(
        &self,
        set: &mut CompressedSketchSet,
        prefix: &PrefixSet,
        group: usize,
        size: usize,
    ) {
        let want = Sketch::pivot_count(size);
        // Shrink or grow the pivot vector to the required length.
        while set.pivots(group).len() > want {
            set.pivots_mut(group).pop();
        }
        while set.pivots(group).len() < want {
            // Placeholder; filled below because it is reported as invalid.
            set.pivots_mut(group).push(PivotEntry {
                global_rank: 0,
                local_rank: 0,
            });
        }
        for j in set.invalid_pivots(group) {
            let target = Sketch::target_rank(j + 1, size);
            let global_rank = self
                .global_rank_of_local(prefix, group, target)
                .expect("target rank is within the group size");
            set.pivots_mut(group)[j] = PivotEntry {
                global_rank,
                local_rank: target,
            };
        }
    }

    // ----- updates -----

    /// Insert `score` into `group`. Scores must be globally distinct.
    /// Amortized `O(log_B(f·l))` I/Os.
    pub fn insert(&self, group: usize, score: u64) {
        assert!(group < self.config.f, "group {group} out of range");
        debug_assert!(!self.global.contains(score), "scores must be distinct");

        // Rank the new element will take in G and in its group.
        let rnew = self.global.count_ge(score) + 1;
        let (glo, ghi) = Self::group_bounds(group);
        let local_new = self.groups.count_range(
            GroupScoreEntry {
                group: group as u64,
                score,
            }
            .key(),
            ghi.key(),
        ) + 1;
        let _ = glo;

        // B-trees.
        self.global.insert(score);
        self.groups.insert(GroupScoreEntry {
            group: group as u64,
            score,
        });

        // Prefix block (Lemma 8): shift ranks, then admit the new element if
        // it lands in the prefix of its group.
        let mut prefix = self.load_prefix();
        prefix.apply_insert_shift(rnew);
        if (local_new as usize) <= self.prefix_cap {
            prefix.insert(group, local_new, rnew, self.prefix_cap);
        }
        self.store_prefix(&prefix);

        // Compressed sketch set (§4.2). The group size is re-derived from the
        // B-tree (rather than trusting the cached copy) so that the cached
        // sizes are self-healing under any drift.
        let (mut set, mut sizes) = self.load_sketch();
        set.apply_insert_shift(group, rnew);
        let (glo3, ghi3) = Self::group_bounds(group);
        let size = self.groups.count_range(glo3.key(), ghi3.key()) as usize;
        sizes[group] = size as u32;
        if size.is_power_of_two() {
            // The sketch expands: the new pivot is the smallest element of the
            // group, whose local rank is exactly the group size.
            if let Some(global_rank) = self.global_rank_of_local(&prefix, group, size as u64) {
                set.pivots_mut(group).push(PivotEntry {
                    global_rank,
                    local_rank: size as u64,
                });
            }
        }
        self.repair_group_sketch(&mut set, &prefix, group, size);
        self.store_sketch(&set, &sizes);
    }

    /// Delete `score` from `group`. Returns `false` if it was not present.
    /// Amortized `O(log_B(f·l))` I/Os.
    pub fn delete(&self, group: usize, score: u64) -> bool {
        assert!(group < self.config.f, "group {group} out of range");
        if !self.groups.contains(
            GroupScoreEntry {
                group: group as u64,
                score,
            }
            .key(),
        ) {
            return false;
        }
        let rold = self.global_rank_of(score);
        let (_, ghi) = Self::group_bounds(group);
        let local_old = self.groups.count_range(
            GroupScoreEntry {
                group: group as u64,
                score,
            }
            .key(),
            ghi.key(),
        );

        // B-trees.
        self.global.remove(score);
        self.groups.remove(
            GroupScoreEntry {
                group: group as u64,
                score,
            }
            .key(),
        );

        // Prefix block.
        let mut prefix = self.load_prefix();
        if (local_old as usize) <= self.prefix_cap {
            prefix.remove(group, local_old);
        }
        prefix.apply_delete_shift(rold);
        // Refill the freed slot from the B-trees if the group still has enough
        // elements (§4.4).
        let (glo2, ghi2) = Self::group_bounds(group);
        let group_size_now = self.groups.count_range(glo2.key(), ghi2.key());
        if (local_old as usize) <= self.prefix_cap
            && prefix.len(group) < self.prefix_cap
            && group_size_now > prefix.len(group) as u64
        {
            let next_rank = prefix.len(group) as u64 + 1;
            if let Some(s) = self.local_select(group, next_rank) {
                let gr = self.global_rank_of(s);
                prefix.entries_mut(group).push(gr);
            }
        }
        self.store_prefix(&prefix);

        // Compressed sketch set (§4.3).
        let (mut set, mut sizes) = self.load_sketch();
        let old_size = sizes[group] as usize;
        let (glo3, ghi3) = Self::group_bounds(group);
        let size = self.groups.count_range(glo3.key(), ghi3.key()) as usize;
        sizes[group] = size as u32;
        // A pivot equal to the deleted element dangles; invalidate it so the
        // repair pass recomputes it.
        if let Some(idx) = set.find_pivot_by_global(group, rold) {
            set.pivots_mut(group)[idx] = PivotEntry {
                global_rank: 0,
                local_rank: 0,
            };
        }
        if old_size.is_power_of_two() && !set.pivots(group).is_empty() {
            // The sketch shrinks.
            set.pivots_mut(group).pop();
        }
        set.apply_delete_shift(group, rold);
        self.repair_group_sketch(&mut set, &prefix, group, size);
        self.store_sketch(&set, &sizes);
        true
    }

    // ----- queries -----

    /// Approximate rank selection over groups `α1..=α2` (0-based, inclusive):
    /// returns a score whose rank in `∪_{i∈[α1,α2]} G_i` lies in `[k, c2·k]`
    /// with `c2 = 8`, or `None` for `−∞` (fewer than `2k` elements in the
    /// union). Cost `O(log_B(f·l))` I/Os.
    pub fn query(&self, alpha1: usize, alpha2: usize, k: u64) -> Option<u64> {
        assert!(alpha1 <= alpha2 && alpha2 < self.config.f);
        assert!(k >= 1);
        let (set, _sizes) = self.load_sketch();
        // Lemma 7 runs in "value space"; global ranks order elements in the
        // opposite direction, so flip them.
        let flipped: Vec<Vec<u64>> = (alpha1..=alpha2)
            .map(|g| {
                set.pivots(g)
                    .iter()
                    .map(|p| u64::MAX - p.global_rank)
                    .collect()
            })
            .collect();
        let views: Vec<&[u64]> = flipped.iter().map(|v| v.as_slice()).collect();
        let answer = lemma7::approx_rank_select(&views, k)?;
        let global_rank = u64::MAX - answer;
        self.element_of_global_rank(global_rank)
    }

    /// The largest score among groups `α1..=α2`, if any (the `Max` operator
    /// needed by AURS / §3.3). Cost `O(log_B(f·l))` I/Os.
    pub fn max_in_groups(&self, alpha1: usize, alpha2: usize) -> Option<u64> {
        assert!(alpha1 <= alpha2 && alpha2 < self.config.f);
        let lo = GroupScoreEntry {
            group: alpha1 as u64,
            score: 0,
        };
        let hi = GroupScoreEntry {
            group: alpha2 as u64,
            score: u64::MAX,
        };
        self.groups
            .range_max_aux(lo.key(), hi.key())
            .map(|e| e.score)
    }

    /// Total number of scores in groups `α1..=α2`.
    pub fn count_in_groups(&self, alpha1: usize, alpha2: usize) -> u64 {
        let lo = GroupScoreEntry {
            group: alpha1 as u64,
            score: 0,
        };
        let hi = GroupScoreEntry {
            group: alpha2 as u64,
            score: u64::MAX,
        };
        self.groups.count_range(lo.key(), hi.key())
    }

    /// Smallest score currently stored in `group`, if any.
    pub fn group_min(&self, group: usize) -> Option<u64> {
        let size = self.group_len(group);
        if size == 0 {
            return None;
        }
        self.local_select(group, size)
    }

    /// Whether `group` currently contains `score`.
    pub fn group_contains(&self, group: usize, score: u64) -> bool {
        self.groups.contains(
            GroupScoreEntry {
                group: group as u64,
                score,
            }
            .key(),
        )
    }

    /// The `rank`-th largest score over all groups (exact, via the B-tree on
    /// `G`), if the union is that large.
    pub fn union_select_desc(&self, rank: u64) -> Option<u64> {
        self.global.select_desc(rank)
    }

    /// The `limit` largest scores over all groups, descending.
    pub fn union_top_scores(&self, limit: usize) -> Vec<u64> {
        let mut all = self.global.collect_all();
        all.reverse();
        all.truncate(limit);
        all
    }

    /// Free every page this structure owns except the (empty) B-tree roots;
    /// called when a tree node rebuilds its secondary structures.
    pub fn release(&self) {
        self.global.clear();
        self.groups.clear();
        self.pages.free(self.sketch_page);
        self.pages.free(self.prefix_page);
    }

    /// All scores of `group`, descending (test / rebuild support;
    /// `O(l/B + log_B(f·l))` I/Os).
    pub fn group_scores_desc(&self, group: usize) -> Vec<u64> {
        let (lo, hi) = Self::group_bounds(group);
        let mut v: Vec<u64> = self
            .groups
            .collect_range(lo.key(), hi.key())
            .into_iter()
            .map(|e| e.score)
            .collect();
        v.reverse();
        v
    }

    // ----- bulk construction -----

    /// Build the structure from explicit group contents (used when a tree node
    /// rebuilds its secondary structures). `contents[i]` holds the scores of
    /// `G_i` in any order.
    pub fn bulk_build(
        device: &Device,
        name: &str,
        config: GroupSelectConfig,
        contents: &[Vec<u64>],
    ) -> Self {
        assert!(contents.len() <= config.f);
        let s = Self::new(device, name, config);
        // Global B-tree.
        let mut all: Vec<u64> = contents.iter().flatten().copied().collect();
        all.sort_unstable();
        s.global.bulk_load(&all);
        // Group B-tree.
        let mut pairs: Vec<GroupScoreEntry> = contents
            .iter()
            .enumerate()
            .flat_map(|(g, scores)| {
                scores.iter().map(move |&score| GroupScoreEntry {
                    group: g as u64,
                    score,
                })
            })
            .collect();
        pairs.sort_unstable_by_key(|e| e.key());
        s.groups.bulk_load(&pairs);

        // Sketches, prefixes and sizes.
        let mut set = CompressedSketchSet::empty(config.f);
        let mut prefix = PrefixSet::empty(config.f);
        let mut sizes = vec![0u32; config.f];
        for (g, scores) in contents.iter().enumerate() {
            let mut desc: Vec<u64> = scores.clone();
            desc.sort_unstable_by(|a, b| b.cmp(a));
            sizes[g] = desc.len() as u32;
            for (r, &score) in desc.iter().enumerate().take(s.prefix_cap) {
                let _ = r;
                prefix.entries_mut(g).push(s.global_rank_of(score));
            }
            let m = Sketch::pivot_count(desc.len());
            for j in 1..=m {
                let local = Sketch::target_rank(j, desc.len());
                let score = desc[(local - 1) as usize];
                set.pivots_mut(g).push(PivotEntry {
                    global_rank: s.global_rank_of(score),
                    local_rank: local,
                });
            }
        }
        s.store_sketch(&set, &sizes);
        s.store_prefix(&prefix);
        s
    }

    // ----- verification (test support) -----

    /// Check every internal invariant against the B-tree contents; panics on
    /// violation. Intended for tests (it scans the structure).
    pub fn verify(&self) {
        let (set, sizes) = self.load_sketch();
        let prefix = self.load_prefix();
        let mut group_sizes = Vec::new();
        for (g, cached_size) in sizes.iter().enumerate() {
            let scores = self.group_scores_desc(g);
            group_sizes.push(scores.len());
            assert_eq!(
                scores.len(),
                *cached_size as usize,
                "cached size of group {g}"
            );
            // Prefix correctness.
            let expect: Vec<u64> = scores
                .iter()
                .take(self.prefix_cap)
                .map(|&s| self.global_rank_of(s))
                .collect();
            let got: Vec<u64> = (1..=expect.len() as u64)
                .map(|r| prefix.global_rank(g, r).unwrap())
                .collect();
            assert_eq!(got, expect, "prefix of group {g}");
            // Sketch pivots: correct count, windows, and rank consistency.
            assert_eq!(set.pivots(g).len(), Sketch::pivot_count(scores.len()));
            for (j, p) in set.pivots(g).iter().enumerate() {
                let lo = 1u64 << j;
                let hi = 1u64 << (j + 1);
                assert!(
                    p.local_rank >= lo && p.local_rank < hi,
                    "group {g} pivot {j} local rank {} outside [{lo},{hi})",
                    p.local_rank
                );
                let score = scores[(p.local_rank - 1) as usize];
                assert_eq!(
                    p.global_rank,
                    self.global_rank_of(score),
                    "group {g} pivot {j}: stale global rank"
                );
            }
        }
        set.check_valid(&group_sizes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::EmConfig;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    fn device() -> Device {
        Device::new(EmConfig::new(128, 128 * 128))
    }

    /// Oracle: per-group sorted-descending score vectors.
    struct Oracle {
        groups: Vec<Vec<u64>>,
    }

    impl Oracle {
        fn new(f: usize) -> Self {
            Self {
                groups: vec![Vec::new(); f],
            }
        }
        fn insert(&mut self, g: usize, s: u64) {
            self.groups[g].push(s);
            self.groups[g].sort_unstable_by(|a, b| b.cmp(a));
        }
        fn delete(&mut self, g: usize, s: u64) {
            self.groups[g].retain(|&x| x != s);
        }
        fn union_rank(&self, a1: usize, a2: usize, x: u64) -> u64 {
            self.groups[a1..=a2]
                .iter()
                .flatten()
                .filter(|&&v| v >= x)
                .count() as u64
        }
        fn union_len(&self, a1: usize, a2: usize) -> u64 {
            self.groups[a1..=a2].iter().map(|g| g.len() as u64).sum()
        }
    }

    fn check_query(gs: &GroupSelect, oracle: &Oracle, a1: usize, a2: usize, k: u64) {
        match gs.query(a1, a2, k) {
            Some(x) => {
                let r = oracle.union_rank(a1, a2, x);
                assert!(
                    r >= k && r <= crate::LEMMA7_FACTOR * k,
                    "query([{a1},{a2}], {k}) returned rank {r}"
                );
            }
            None => {
                assert!(
                    oracle.union_len(a1, a2) < 2 * k,
                    "-inf returned but union has {} elements (k={k})",
                    oracle.union_len(a1, a2)
                );
            }
        }
    }

    #[test]
    fn inserts_maintain_invariants_and_queries() {
        let dev = device();
        let gs = GroupSelect::new(&dev, "gs", GroupSelectConfig::new(4, 256));
        let mut oracle = Oracle::new(4);
        let mut rng = StdRng::seed_from_u64(42);
        for (step, next_score) in (1u64..=400).enumerate() {
            let g = rng.gen_range(0..4);
            let s = next_score * 7;
            gs.insert(g, s);
            oracle.insert(g, s);
            if step % 50 == 0 {
                gs.verify();
            }
        }
        gs.verify();
        assert_eq!(gs.len(), 400);
        for (a1, a2) in [(0, 3), (1, 2), (0, 0), (2, 3)] {
            for k in [1u64, 2, 5, 20, 50] {
                if k <= oracle.union_len(a1, a2) {
                    check_query(&gs, &oracle, a1, a2, k);
                }
            }
        }
    }

    #[test]
    fn deletes_maintain_invariants_and_queries() {
        let dev = device();
        let gs = GroupSelect::new(&dev, "gs", GroupSelectConfig::new(3, 256));
        let mut oracle = Oracle::new(3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut live: Vec<(usize, u64)> = Vec::new();
        for i in 0..300u64 {
            let g = rng.gen_range(0..3);
            let s = (i + 1) * 3;
            gs.insert(g, s);
            oracle.insert(g, s);
            live.push((g, s));
        }
        live.shuffle(&mut rng);
        for (step, &(g, s)) in live.iter().take(200).enumerate() {
            assert!(gs.delete(g, s));
            oracle.delete(g, s);
            if step % 25 == 0 {
                gs.verify();
            }
        }
        gs.verify();
        assert_eq!(gs.len(), 100);
        for k in [1u64, 3, 10, 25] {
            if k <= oracle.union_len(0, 2) {
                check_query(&gs, &oracle, 0, 2, k);
            }
        }
        // Deleting something absent is a no-op.
        assert!(!gs.delete(0, 999_999));
    }

    #[test]
    fn mixed_workload_against_oracle() {
        let dev = device();
        let f = 5;
        let gs = GroupSelect::new(&dev, "gs", GroupSelectConfig::new(f, 512));
        let mut oracle = Oracle::new(f);
        let mut rng = StdRng::seed_from_u64(99);
        let mut live: Vec<(usize, u64)> = Vec::new();
        let mut next = 1u64;
        for _ in 0..1200 {
            let do_delete = !live.is_empty() && rng.gen_bool(0.35);
            if do_delete {
                let idx = rng.gen_range(0..live.len());
                let (g, s) = live.swap_remove(idx);
                assert!(gs.delete(g, s));
                oracle.delete(g, s);
            } else {
                let g = rng.gen_range(0..f);
                let s = next * 11;
                next += 1;
                gs.insert(g, s);
                oracle.insert(g, s);
                live.push((g, s));
            }
        }
        gs.verify();
        for _ in 0..30 {
            let a1 = rng.gen_range(0..f);
            let a2 = rng.gen_range(a1..f);
            let total = oracle.union_len(a1, a2);
            if total == 0 {
                continue;
            }
            let k = rng.gen_range(1..=total);
            check_query(&gs, &oracle, a1, a2, k);
        }
    }

    #[test]
    fn max_and_count_operators() {
        let dev = device();
        let gs = GroupSelect::new(&dev, "gs", GroupSelectConfig::new(4, 64));
        gs.insert(0, 10);
        gs.insert(1, 50);
        gs.insert(1, 40);
        gs.insert(3, 99);
        assert_eq!(gs.max_in_groups(0, 1), Some(50));
        assert_eq!(gs.max_in_groups(0, 3), Some(99));
        assert_eq!(gs.max_in_groups(2, 2), None);
        assert_eq!(gs.count_in_groups(0, 1), 3);
        assert_eq!(gs.count_in_groups(2, 2), 0);
        assert_eq!(gs.group_len(1), 2);
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let dev = device();
        let contents = vec![
            vec![5u64, 15, 25, 35],
            vec![100, 200],
            vec![],
            (1..=60).map(|i| 1000 + i * 2).collect::<Vec<u64>>(),
        ];
        let gs = GroupSelect::bulk_build(&dev, "gs", GroupSelectConfig::new(4, 128), &contents);
        gs.verify();
        assert_eq!(gs.len(), 66);
        assert_eq!(gs.group_len(3), 60);
        let mut oracle = Oracle::new(4);
        for (g, scores) in contents.iter().enumerate() {
            for &s in scores {
                oracle.insert(g, s);
            }
        }
        for k in [1u64, 2, 8, 30] {
            check_query(&gs, &oracle, 0, 3, k);
        }
        // Continue updating after a bulk build.
        gs.insert(2, 7);
        gs.delete(0, 5);
        gs.verify();
    }

    #[test]
    fn query_io_cost_is_logarithmic() {
        let dev = Device::new(EmConfig::new(128, 8 * 128)); // small pool to force misses
        let f = 8;
        let contents: Vec<Vec<u64>> = (0..f)
            .map(|g| {
                (0..200u64)
                    .map(|i| (g as u64) + 1 + i * (f as u64) * 2)
                    .collect()
            })
            .collect();
        let gs = GroupSelect::bulk_build(&dev, "gs", GroupSelectConfig::new(f, 256), &contents);
        dev.drop_cache();
        let (_, cost) = dev.measure(|| {
            let _ = gs.query(0, f - 1, 5);
        });
        assert!(
            cost.reads <= 10,
            "query should read the sketch block plus one B-tree path, got {} reads",
            cost.reads
        );
    }
}
