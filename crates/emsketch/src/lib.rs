//! # emsketch — the sketch toolkit of §3–§4 of the paper
//!
//! This crate implements the "RAM-reminiscent" machinery that powers the
//! paper's small-`k` structure:
//!
//! * [`Sketch`] — the *logarithmic sketch* of Sheng & Tao (PODS'12): an array
//!   of `⌊lg l⌋ + 1` pivots, the `j`-th of which is an element of the
//!   underlying set with rank in `[2^(j-1), 2^j)`.
//! * [`lemma7::approx_rank_select`] — given the sketches of `m` disjoint sets
//!   and a rank `k`, returns a value whose rank in the union lies in
//!   `[k, c3·k]` (Lemma 7; our implementation guarantees `c3 = 8`, see the
//!   module docs for the proof sketch), using no I/O beyond reading the
//!   sketches.
//! * [`bitpack`] — bit-level packing used by the *compressed* sketch and
//!   prefix sets, which describe each pivot by its global rank (`lg(f·l)`
//!   bits) and local rank (`lg l` bits) so that an entire sketch set fits in
//!   one block (§4.1).
//! * [`CompressedSketchSet`] / [`PrefixSet`] — the one-block compressed forms
//!   of a sketch set and of the per-group prefixes of Lemma 8.
//! * [`GroupSelect`] — the `(f, l)`-group approximate k-selection structure of
//!   Lemma 6: `O(f·l/B)` space, `O(log_B(f·l))` query and amortized update.
//! * [`aurs`] — approximate union-rank selection (Lemma 5), running on any
//!   collection of sets exposing `Max` and approximate `Rank` operators.

pub mod aurs;
pub mod bitpack;
mod compressed;
mod group;
pub mod lemma7;
mod prefix;
mod sketch;

pub use compressed::{CompressedSketchSet, PivotEntry, SketchSetCodec};
pub use group::{GroupSelect, GroupSelectConfig};
pub use prefix::{PrefixCodec, PrefixSet};
pub use sketch::Sketch;

/// The approximation factor `c3` guaranteed by this crate's implementation of
/// Lemma 7: the returned value's rank in the union lies in `[k, LEMMA7_FACTOR·k]`.
pub const LEMMA7_FACTOR: u64 = 8;

/// The paper's rank convention: the rank of `x` in a set `L` is
/// `|{e ∈ L : e ≥ x}|`; the largest element has rank 1.
pub fn rank_in(values: &[u64], x: u64) -> u64 {
    values.iter().filter(|&&v| v >= x).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_convention() {
        let vals = vec![10, 20, 30, 40];
        assert_eq!(rank_in(&vals, 40), 1);
        assert_eq!(rank_in(&vals, 35), 1);
        assert_eq!(rank_in(&vals, 30), 2);
        assert_eq!(rank_in(&vals, 5), 4);
        assert_eq!(rank_in(&vals, 41), 0);
    }
}
