//! Approximate union-rank selection (AURS, Lemma 5 and the appendix of the
//! paper).
//!
//! Given `m` disjoint sets `L_1, …, L_m` that can only be accessed through a
//! `Max` operator and an approximate `Rank` operator (returning an element
//! whose local rank lies in `[ρ, c1·ρ)`), and a rank `k`, return an element of
//! the union whose union-rank lies in `[k, c'·k]` for a constant `c'` that
//! depends only on `c1`, using `O(m · (cost_max + cost_rank))` I/Os.
//!
//! In §3.3 each `L_i` is the point set of one canonical multi-slab and the two
//! operators are implemented by the node's [`GroupSelect`](crate::GroupSelect)
//! structure and range-maximum B-tree; the I/O charging therefore happens
//! inside the [`RankedSet`] implementation.

/// A set of distinct scores accessible through the two operators the AURS
/// algorithm is allowed to use.
pub trait RankedSet {
    /// The largest element (`Max` operator), or `None` when the set is empty.
    fn max(&self) -> Option<u64>;

    /// The `Rank` operator: an element whose rank in this set lies in
    /// `[rho, c1·rho)` for the structure's constant `c1`. Implementations
    /// should clamp `rho` to the set size (returning the minimum element) so
    /// the algorithm degrades gracefully when the paper's precondition
    /// `k ≤ min_i |L_i| / c1` does not hold exactly.
    fn approx_rank(&self, rho: u64) -> Option<u64>;
}

/// A pivot collected by the algorithm: its value and the weight of the round
/// it was fetched in.
#[derive(Debug, Clone, Copy)]
struct WeightedPivot {
    value: u64,
    weight: u64,
}

/// Run AURS over `sets` with rank parameter `k` and rank-operator slack `c1`
/// (`c1 ≥ 2`). Returns `None` only if every set is empty.
pub fn aurs(sets: &[&dyn RankedSet], k: u64, c1: u64) -> Option<u64> {
    let c = c1.max(2);
    let k = k.max(1);
    // Fetch the maxima once; empty sets drop out immediately.
    let maxima: Vec<(usize, u64)> = sets
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.max().map(|v| (i, v)))
        .collect();
    if maxima.is_empty() {
        return None;
    }
    let m = maxima.len() as u64;

    if k < m {
        // Case k < m: keep only the k sets with the largest maxima; the k-th
        // largest maximum v' is itself a candidate answer.
        let mut sorted = maxima.clone();
        sorted.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v));
        let v_prime = sorted[(k - 1) as usize].1;
        let active: Vec<usize> = sorted[..k as usize].iter().map(|&(i, _)| i).collect();
        let v = rounds(sets, &active, k, c);
        return Some(match v {
            Some(v) => v.max(v_prime),
            None => v_prime,
        });
    }

    let active: Vec<usize> = maxima.iter().map(|&(i, _)| i).collect();
    match rounds(sets, &active, k, c) {
        Some(v) => Some(v),
        // Degenerate fallback (k larger than the union): smallest maximum.
        None => maxima.iter().map(|&(_, v)| v).min(),
    }
}

/// The main round-based algorithm for the case `k ≥ m` (appendix of the
/// paper), run over the given active set indices.
fn rounds(sets: &[&dyn RankedSet], initial_active: &[usize], k: u64, c: u64) -> Option<u64> {
    let m = initial_active.len() as u64;
    if m == 0 {
        return None;
    }
    let total_rounds = {
        // ⌈log_c m⌉, at least 1.
        let mut r = 1u32;
        let mut cover = c;
        while cover < m {
            cover = cover.saturating_mul(c);
            r += 1;
        }
        r
    };

    let mut active: Vec<usize> = initial_active.to_vec();
    let mut pivots: Vec<WeightedPivot> = Vec::new();
    let mut prev_cum_weight = 0u64;

    for j in 1..=total_rounds {
        if active.is_empty() {
            break;
        }
        let c_pow_j = c.saturating_pow(j);
        // ⌈c^j · k / m⌉ — the round's cumulative weight; ρ is the same
        // quantity clamped to at least 1.
        let cum_weight = (c_pow_j.saturating_mul(k)).div_ceil(m);
        let rho = cum_weight.max(1);
        let weight = cum_weight.saturating_sub(prev_cum_weight).max(1);
        prev_cum_weight = cum_weight;

        // Fetch one marker per active set.
        let mut markers: Vec<(usize, u64)> = Vec::with_capacity(active.len());
        for &i in &active {
            if let Some(v) = sets[i].approx_rank(rho) {
                markers.push((i, v));
            }
        }
        if markers.is_empty() {
            break;
        }
        // The ⌈m / c^j⌉ largest markers become pivots; their sets stay active.
        let keep = (m.div_ceil(c_pow_j) as usize).max(1);
        markers.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v));
        let kept = &markers[..keep.min(markers.len())];
        for &(_, v) in kept {
            pivots.push(WeightedPivot { value: v, weight });
        }
        active = kept.iter().map(|&(i, _)| i).collect();
    }

    // Weighted selection: the largest pivot whose prefix weight reaches k.
    pivots.sort_unstable_by_key(|p| std::cmp::Reverse(p.value));
    let mut acc = 0u64;
    for p in &pivots {
        acc += p.weight;
        if acc >= k {
            return Some(p.value);
        }
    }
    pivots.last().map(|p| p.value)
}

/// A [`RankedSet`] over an in-memory sorted vector, with a configurable rank
/// slack; used by tests and by the RAM-model baseline.
#[derive(Debug, Clone)]
pub struct VecRankedSet {
    /// Scores in descending order.
    desc: Vec<u64>,
    /// Simulated slack: the rank operator returns the element of rank
    /// `min(|L|, rho + (slack_num·rho)/slack_den)` — within `[ρ, c1·ρ)` as long
    /// as `1 + slack_num/slack_den < c1`.
    slack_num: u64,
    slack_den: u64,
}

impl VecRankedSet {
    /// Build from scores in any order.
    pub fn new(mut scores: Vec<u64>) -> Self {
        scores.sort_unstable_by(|a, b| b.cmp(a));
        Self {
            desc: scores,
            slack_num: 0,
            slack_den: 1,
        }
    }

    /// Use an approximate rank operator that overshoots the requested rank by
    /// a factor `1 + num/den`.
    pub fn with_slack(mut self, num: u64, den: u64) -> Self {
        self.slack_num = num;
        self.slack_den = den.max(1);
        self
    }

    /// The underlying scores, descending.
    pub fn scores_desc(&self) -> &[u64] {
        &self.desc
    }
}

impl RankedSet for VecRankedSet {
    fn max(&self) -> Option<u64> {
        self.desc.first().copied()
    }

    fn approx_rank(&self, rho: u64) -> Option<u64> {
        if self.desc.is_empty() {
            return None;
        }
        let target = rho + (self.slack_num * rho) / self.slack_den;
        let idx = (target.max(1) as usize - 1).min(self.desc.len() - 1);
        Some(self.desc[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Accept anything within this factor of k (the paper's c' for c1 = 2 is
    /// c1²·(2 + 2c1) = 24; keep a little slack for the ceilings we use).
    const ACCEPT_FACTOR: u64 = 32;

    fn union_rank(sets: &[VecRankedSet], x: u64) -> u64 {
        sets.iter()
            .flat_map(|s| s.scores_desc())
            .filter(|&&v| v >= x)
            .count() as u64
    }

    fn union_len(sets: &[VecRankedSet]) -> u64 {
        sets.iter().map(|s| s.scores_desc().len() as u64).sum()
    }

    /// Build sets whose sizes respect the paper's precondition (2):
    /// `k ≤ min_i |L_i| / c1`, i.e. every set has at least `min_size` elements.
    fn build_sets(seed: u64, m: usize, min_size: usize, max_size: usize) -> Vec<VecRankedSet> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next = 1u64;
        (0..m)
            .map(|_| {
                let size = rng.gen_range(min_size..=max_size);
                let scores: Vec<u64> = (0..size)
                    .map(|_| {
                        let v = next * 3;
                        next += 1;
                        v
                    })
                    .collect();
                VecRankedSet::new(scores)
            })
            .collect()
    }

    #[test]
    fn rank_is_at_least_k_and_bounded() {
        for seed in 0..8u64 {
            let sets = build_sets(seed, 7, 800, 1200);
            let views: Vec<&dyn RankedSet> = sets.iter().map(|s| s as &dyn RankedSet).collect();
            for k in [1u64, 2, 3, 10, 40, 100, 400] {
                let v = aurs(&views, k, 2).expect("non-empty union");
                let r = union_rank(&sets, v);
                assert!(r >= k, "seed {seed} k {k}: rank {r} < k");
                assert!(
                    r <= ACCEPT_FACTOR * k,
                    "seed {seed} k {k}: rank {r} > {ACCEPT_FACTOR}·k"
                );
            }
        }
    }

    #[test]
    fn works_when_k_smaller_than_set_count() {
        let sets = build_sets(5, 20, 20, 50);
        let views: Vec<&dyn RankedSet> = sets.iter().map(|s| s as &dyn RankedSet).collect();
        for k in 1..10u64 {
            let v = aurs(&views, k, 2).unwrap();
            let r = union_rank(&sets, v);
            assert!(r >= k && r <= ACCEPT_FACTOR * k, "k={k} rank={r}");
        }
    }

    #[test]
    fn tolerates_approximate_rank_operator() {
        let base = build_sets(11, 6, 260, 300);
        let sets: Vec<VecRankedSet> = base.into_iter().map(|s| s.with_slack(4, 5)).collect();
        let views: Vec<&dyn RankedSet> = sets.iter().map(|s| s as &dyn RankedSet).collect();
        for k in [1u64, 5, 25, 125] {
            let v = aurs(&views, k, 2).unwrap();
            let r = union_rank(&sets, v);
            assert!(r >= k && r <= ACCEPT_FACTOR * k, "k={k} rank={r}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let views: Vec<&dyn RankedSet> = Vec::new();
        assert_eq!(aurs(&views, 3, 2), None);

        let one = VecRankedSet::new(vec![42]);
        let views: Vec<&dyn RankedSet> = vec![&one];
        let v = aurs(&views, 1, 2).unwrap();
        assert_eq!(v, 42);

        let empty = VecRankedSet::new(vec![]);
        let views: Vec<&dyn RankedSet> = vec![&empty];
        assert_eq!(aurs(&views, 1, 2), None);
    }

    /// Formerly a proptest; now 40 seeded random cases with the same shape.
    #[test]
    fn random_instances_stay_within_factor() {
        for case in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(0xA0_05 ^ case);
            let seed = rng.gen_range(0u64..10_000);
            let m = rng.gen_range(1usize..10);
            let k = rng.gen_range(1u64..200);
            // Respect precondition (2): every set at least 2k elements.
            let sets = build_sets(seed, m, 2 * k as usize, 2 * k as usize + 150);
            let total = union_len(&sets);
            if k > total {
                continue;
            }
            let views: Vec<&dyn RankedSet> = sets.iter().map(|s| s as &dyn RankedSet).collect();
            let v = aurs(&views, k, 2).unwrap();
            let r = union_rank(&sets, v);
            assert!(r >= k, "case {case}: rank {r} < k {k}");
            assert!(
                r <= ACCEPT_FACTOR * k,
                "case {case}: rank {r} > {ACCEPT_FACTOR}*{k}"
            );
        }
    }
}
