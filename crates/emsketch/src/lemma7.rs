//! Lemma 7: approximate rank selection over the union of sketched sets.
//!
//! Given the sketches of `m` disjoint sets `L_1, …, L_m` and a rank
//! `1 ≤ k ≤ |∪L_i|`, find a value `x` whose rank in the union lies in
//! `[k, c3·k]`; `x` is either an element of the union (in fact one of the
//! pivots) or `−∞` (represented as `None`).
//!
//! ## Algorithm and the constant `c3 = 8`
//!
//! For a candidate value `x` and sketch `Σ_i`, let `j*` be the largest pivot
//! index with `Σ_i[j*] ≥ x`. The pivot rank windows give
//!
//! * a lower bound `lb_i(x) = 2^(j*-1)` on `rank_i(x)` (0 when `j* = 0`), and
//! * an upper bound `ub_i(x) ≤ min(|L_i|, 2^(j*+1) − 1) < 4·lb_i(x)`
//!   (0 when `j* = 0`, because then even the maximum of `L_i` is `< x`).
//!
//! Summing over the sets: `LB(x) ≤ rank_∪(x) ≤ UB(x) ≤ 4·LB(x)`.
//! The algorithm returns the largest candidate (pivot) `x*` with `LB(x*) ≥ k`.
//! Let `x'` be the smallest candidate larger than `x*` (if any); moving from
//! `x'` down to `x*` changes `j*` in exactly one sketch — the one `x*` belongs
//! to — and there at most from `j*−1` to `j*`, so `LB(x*) ≤ 2·LB(x') + 1 < 2k + 1`.
//! Hence `k ≤ rank(x*) ≤ 4·(2k) = 8k`.
//! If no candidate reaches `LB ≥ k`, then in particular the globally smallest
//! pivot `x0` has `LB(x0) < k`; since `LB(x0) > |∪L_i| / 2`, the union holds
//! fewer than `2k` elements and `−∞` (rank `|∪L_i| ∈ [k, 2k)`) is a valid
//! answer, exactly as the lemma permits.

/// Result of [`approx_rank_select`]: `None` stands for `−∞` (every element of
/// the union is at least as large as the answer).
pub type RankSelectResult = Option<u64>;

/// Run Lemma 7 on the pivot arrays of `m` sketches (element `[i]` is the
/// pivot array of `Σ_i`, ordered by pivot index). Purely in-memory: the caller
/// has already paid the I/O to load the sketches.
///
/// Returns a value whose rank in the union is in `[k, 8k]`, or `None` (−∞)
/// when the union is guaranteed to hold fewer than `2k` elements.
pub fn approx_rank_select(sketches: &[&[u64]], k: u64) -> RankSelectResult {
    assert!(k >= 1, "rank parameter k must be at least 1");
    let mut best: Option<u64> = None;
    for pivots in sketches {
        for &candidate in pivots.iter() {
            if best.map(|b| candidate <= b).unwrap_or(false) {
                // A larger candidate already qualified; LB only grows as the
                // candidate shrinks, so this one cannot improve the answer.
                continue;
            }
            if lower_bound(sketches, candidate) >= k {
                best = Some(candidate);
            }
        }
    }
    best
}

/// `LB(x) = Σ_i 2^(j*_i − 1)`: a lower bound on the rank of `x` in the union.
pub fn lower_bound(sketches: &[&[u64]], x: u64) -> u64 {
    let mut lb = 0u64;
    for pivots in sketches {
        let mut local = 0u64;
        for (idx, &p) in pivots.iter().enumerate() {
            if p >= x {
                local = 1u64 << idx;
            }
        }
        lb += local;
    }
    lb
}

/// `UB(x)`: an upper bound on the rank of `x` in the union, using the same
/// per-sketch windows (`set_sizes[i] = |L_i|` tightens the last window).
pub fn upper_bound(sketches: &[&[u64]], set_sizes: &[u64], x: u64) -> u64 {
    let mut ub = 0u64;
    for (i, pivots) in sketches.iter().enumerate() {
        let mut j_star = 0usize;
        for (idx, &p) in pivots.iter().enumerate() {
            if p >= x {
                j_star = idx + 1;
            }
        }
        if j_star > 0 {
            let window = (1u64 << (j_star + 1)) - 1;
            ub += window.min(set_sizes[i]);
        }
    }
    ub
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rank_in, Sketch, LEMMA7_FACTOR};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Build disjoint sets with distinct values, their sketches, and the union.
    fn build_sets(seed: u64, m: usize, max_size: usize) -> (Vec<Vec<u64>>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<u64> = (1..=(m * max_size) as u64).map(|v| v * 13).collect();
        // Shuffle and deal out to sets of random sizes.
        for i in (1..all.len()).rev() {
            let j = rng.gen_range(0..=i);
            all.swap(i, j);
        }
        let mut sets = Vec::new();
        let mut cursor = 0usize;
        for _ in 0..m {
            let size = rng.gen_range(1..=max_size);
            let mut set: Vec<u64> = all[cursor..cursor + size].to_vec();
            cursor += size;
            set.sort_unstable_by(|a, b| b.cmp(a));
            sets.push(set);
        }
        let mut union: Vec<u64> = sets.iter().flatten().copied().collect();
        union.sort_unstable_by(|a, b| b.cmp(a));
        (sets, union)
    }

    #[test]
    fn returned_rank_is_within_factor() {
        for seed in 0..10u64 {
            let (sets, union) = build_sets(seed, 6, 200);
            let sketches: Vec<Sketch> = sets.iter().map(|s| Sketch::from_sorted_desc(s)).collect();
            let views: Vec<&[u64]> = sketches.iter().map(|s| s.pivots()).collect();
            for k in [1u64, 2, 5, 10, 50, 100, union.len() as u64] {
                if k > union.len() as u64 {
                    continue;
                }
                match approx_rank_select(&views, k) {
                    Some(x) => {
                        let r = rank_in(&union, x);
                        assert!(
                            r >= k && r <= LEMMA7_FACTOR * k,
                            "seed {seed} k={k}: rank {r} outside [{k}, {}]",
                            LEMMA7_FACTOR * k
                        );
                        assert!(union.contains(&x), "answer must be an element of the union");
                    }
                    None => {
                        assert!(
                            (union.len() as u64) < 2 * k,
                            "-infinity answer but union has {} ≥ 2k elements",
                            union.len()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_set_behaves() {
        let set: Vec<u64> = (1..=100u64).rev().map(|v| v * 2).collect();
        let sketch = Sketch::from_sorted_desc(&set);
        let views = vec![sketch.pivots()];
        for k in 1..=100u64 {
            match approx_rank_select(&views, k) {
                Some(x) => {
                    let r = rank_in(&set, x);
                    assert!(r >= k && r <= LEMMA7_FACTOR * k, "k={k} rank={r}");
                }
                None => assert!(100 < 2 * k),
            }
        }
    }

    #[test]
    fn bounds_are_consistent() {
        let (sets, union) = build_sets(3, 4, 150);
        let sketches: Vec<Sketch> = sets.iter().map(|s| Sketch::from_sorted_desc(s)).collect();
        let views: Vec<&[u64]> = sketches.iter().map(|s| s.pivots()).collect();
        let sizes: Vec<u64> = sets.iter().map(|s| s.len() as u64).collect();
        for &probe in union.iter().step_by(7) {
            let r = rank_in(&union, probe);
            assert!(lower_bound(&views, probe) <= r);
            assert!(upper_bound(&views, &sizes, probe) >= r);
        }
    }

    /// Formerly a proptest; now 48 seeded random cases with the same shape.
    #[test]
    fn factor_holds_for_random_instances() {
        for case in 0..48u64 {
            let mut rng = StdRng::seed_from_u64(0x1e77 ^ case);
            let seed = rng.gen_range(0u64..5000);
            let m = rng.gen_range(1usize..8);
            let k = rng.gen_range(1u64..300);
            let (sets, union) = build_sets(seed, m, 120);
            if k > union.len() as u64 {
                continue;
            }
            let sketches: Vec<Sketch> = sets.iter().map(|s| Sketch::from_sorted_desc(s)).collect();
            let views: Vec<&[u64]> = sketches.iter().map(|s| s.pivots()).collect();
            match approx_rank_select(&views, k) {
                Some(x) => {
                    let r = rank_in(&union, x);
                    assert!(
                        r >= k && r <= LEMMA7_FACTOR * k,
                        "case {case}: rank {r}, k {k}"
                    );
                }
                None => assert!((union.len() as u64) < 2 * k, "case {case}"),
            }
        }
    }
}
