//! The compressed sketch set of §4.1: one block describing the sketches of all
//! `f` groups, each pivot stored as a (global rank, local rank) pair.

use crate::bitpack::{bits_for, BitReader, BitWriter};

/// One pivot of a compressed sketch: the pivot element is identified by its
/// global rank in `G = G_1 ∪ … ∪ G_f` and its local rank in its own `G_i`
/// (both 1-based, paper convention: rank 1 is the largest element).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PivotEntry {
    /// Rank of the pivot in the union `G`.
    pub global_rank: u64,
    /// Rank of the pivot within its own group `G_i`.
    pub local_rank: u64,
}

/// Bit widths used to pack a sketch set for a given `(f, l)` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchSetCodec {
    /// Number of groups `f`.
    pub f: usize,
    /// Maximum group size `l` (so global ranks fit in `lg(f·l)` bits).
    pub l_cap: usize,
    /// Bits per global rank.
    pub global_bits: usize,
    /// Bits per local rank.
    pub local_bits: usize,
    /// Bits per per-group pivot count.
    pub count_bits: usize,
}

impl SketchSetCodec {
    /// Codec for `f` groups of at most `l_cap` elements each.
    pub fn new(f: usize, l_cap: usize) -> Self {
        let global_max = (f as u64) * (l_cap as u64);
        let local_max = l_cap as u64;
        let max_pivots = crate::Sketch::pivot_count(l_cap) as u64;
        Self {
            f,
            l_cap,
            global_bits: bits_for(global_max),
            local_bits: bits_for(local_max),
            count_bits: bits_for(max_pivots.max(1)),
        }
    }

    /// Worst-case number of 64-bit words a packed sketch set occupies.
    pub fn max_words(&self) -> usize {
        let max_pivots = crate::Sketch::pivot_count(self.l_cap);
        let bits = self.f * (self.count_bits + max_pivots * (self.global_bits + self.local_bits));
        bits.div_ceil(64)
    }
}

/// The decoded (in-memory) form of a compressed sketch set: one pivot vector
/// per group, ordered by pivot index `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedSketchSet {
    groups: Vec<Vec<PivotEntry>>,
}

impl CompressedSketchSet {
    /// An empty sketch set for `f` groups.
    pub fn empty(f: usize) -> Self {
        Self {
            groups: vec![Vec::new(); f],
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The pivots of group `i`.
    pub fn pivots(&self, group: usize) -> &[PivotEntry] {
        &self.groups[group]
    }

    /// Mutable access to the pivots of group `i` (used by repair logic).
    pub fn pivots_mut(&mut self, group: usize) -> &mut Vec<PivotEntry> {
        &mut self.groups[group]
    }

    // ----- encoding -----

    /// Pack into 64-bit words using `codec`.
    pub fn encode(&self, codec: &SketchSetCodec) -> Vec<u64> {
        assert_eq!(self.groups.len(), codec.f);
        let mut w = BitWriter::new();
        for group in &self.groups {
            w.write(group.len() as u64, codec.count_bits);
            for p in group {
                w.write(p.global_rank, codec.global_bits);
                w.write(p.local_rank, codec.local_bits);
            }
        }
        w.finish()
    }

    /// Decode from words packed by [`encode`](Self::encode).
    pub fn decode(codec: &SketchSetCodec, words: &[u64]) -> Self {
        let mut r = BitReader::new(words);
        let mut groups = Vec::with_capacity(codec.f);
        for _ in 0..codec.f {
            let count = r.read(codec.count_bits) as usize;
            let mut pivots = Vec::with_capacity(count);
            for _ in 0..count {
                let global_rank = r.read(codec.global_bits);
                let local_rank = r.read(codec.local_bits);
                pivots.push(PivotEntry {
                    global_rank,
                    local_rank,
                });
            }
            groups.push(pivots);
        }
        Self { groups }
    }

    // ----- maintenance (§4.2 / §4.3) -----

    /// Apply the rank shifts caused by inserting an element with global rank
    /// `new_global_rank` into group `group`: every pivot with global rank
    /// `≥ new_global_rank` moves down by one global rank, and within `group`
    /// also by one local rank.
    pub fn apply_insert_shift(&mut self, group: usize, new_global_rank: u64) {
        for (i, pivots) in self.groups.iter_mut().enumerate() {
            for p in pivots.iter_mut() {
                if p.global_rank >= new_global_rank {
                    p.global_rank += 1;
                    if i == group {
                        p.local_rank += 1;
                    }
                }
            }
        }
    }

    /// Apply the rank shifts caused by deleting the element with global rank
    /// `old_global_rank` from group `group`. Pivots equal to the deleted
    /// element are *not* touched (the caller replaces the dangling pivot).
    pub fn apply_delete_shift(&mut self, group: usize, old_global_rank: u64) {
        for (i, pivots) in self.groups.iter_mut().enumerate() {
            for p in pivots.iter_mut() {
                if p.global_rank > old_global_rank {
                    p.global_rank -= 1;
                    if i == group {
                        p.local_rank -= 1;
                    }
                }
            }
        }
    }

    /// Position of the pivot of `group` whose global rank equals `rank`, if
    /// any (used to detect a dangling pivot after a deletion).
    pub fn find_pivot_by_global(&self, group: usize, rank: u64) -> Option<usize> {
        self.groups[group]
            .iter()
            .position(|p| p.global_rank == rank)
    }

    /// Indices `j` (0-based; pivot `j+1` in the paper's 1-based numbering)
    /// whose local rank lies outside the legal window `[2^j, 2^(j+1))`.
    pub fn invalid_pivots(&self, group: usize) -> Vec<usize> {
        self.groups[group]
            .iter()
            .enumerate()
            .filter(|(j, p)| {
                let lo = 1u64 << j;
                let hi = 1u64 << (j + 1);
                p.local_rank < lo || p.local_rank >= hi
            })
            .map(|(j, _)| j)
            .collect()
    }

    /// Check internal consistency for tests: local ranks within windows,
    /// pivot counts matching `group_sizes`.
    pub fn check_valid(&self, group_sizes: &[usize]) {
        assert_eq!(self.groups.len(), group_sizes.len());
        for (i, (pivots, &size)) in self.groups.iter().zip(group_sizes).enumerate() {
            assert_eq!(
                pivots.len(),
                crate::Sketch::pivot_count(size),
                "group {i}: wrong pivot count for size {size}"
            );
            assert!(
                self.invalid_pivots(i).is_empty(),
                "group {i}: invalid pivots {:?}",
                self.invalid_pivots(i)
            );
            for p in pivots {
                assert!(p.local_rank >= 1 && p.local_rank <= size as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> (SketchSetCodec, CompressedSketchSet) {
        let codec = SketchSetCodec::new(4, 64);
        let mut set = CompressedSketchSet::empty(4);
        set.pivots_mut(0).extend([
            PivotEntry {
                global_rank: 3,
                local_rank: 1,
            },
            PivotEntry {
                global_rank: 17,
                local_rank: 3,
            },
        ]);
        set.pivots_mut(2).push(PivotEntry {
            global_rank: 1,
            local_rank: 1,
        });
        (codec, set)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (codec, set) = sample_set();
        let words = set.encode(&codec);
        assert!(words.len() <= codec.max_words());
        let back = CompressedSketchSet::decode(&codec, &words);
        assert_eq!(back, set);
    }

    #[test]
    fn packed_sketch_set_fits_in_one_typical_block() {
        // f = √B·lg^ε N style parameters: f = 16 groups of up to 1024 values,
        // packed into a 512-word block with room to spare.
        let codec = SketchSetCodec::new(16, 1024);
        assert!(
            codec.max_words() <= 512,
            "packed sketch set needs {} words",
            codec.max_words()
        );
    }

    #[test]
    fn insert_shift_moves_ranks() {
        let (_codec, mut set) = sample_set();
        set.apply_insert_shift(0, 3);
        assert_eq!(set.pivots(0)[0].global_rank, 4);
        assert_eq!(set.pivots(0)[0].local_rank, 2);
        assert_eq!(set.pivots(0)[1].global_rank, 18);
        assert_eq!(set.pivots(0)[1].local_rank, 4);
        // Other groups shift global ranks only.
        assert_eq!(set.pivots(2)[0].global_rank, 1);
        assert_eq!(set.pivots(2)[0].local_rank, 1);
        set.apply_insert_shift(2, 1);
        assert_eq!(set.pivots(2)[0].global_rank, 2);
        assert_eq!(set.pivots(2)[0].local_rank, 2);
        assert_eq!(set.pivots(0)[0].global_rank, 5);
        assert_eq!(
            set.pivots(0)[0].local_rank,
            2,
            "local rank untouched in other groups"
        );
    }

    #[test]
    fn delete_shift_moves_ranks_back() {
        let (_codec, mut set) = sample_set();
        set.apply_delete_shift(0, 2);
        assert_eq!(set.pivots(0)[0].global_rank, 2);
        assert_eq!(
            set.pivots(0)[0].local_rank,
            0,
            "local rank shifts in the deleted group"
        );
        assert_eq!(
            set.pivots(2)[0].global_rank,
            1,
            "rank below the deleted one is unchanged"
        );
    }

    #[test]
    fn invalid_pivot_detection() {
        let mut set = CompressedSketchSet::empty(1);
        set.pivots_mut(0).extend([
            PivotEntry {
                global_rank: 1,
                local_rank: 1,
            },
            PivotEntry {
                global_rank: 9,
                local_rank: 5, // window for j=2 (0-based 1) is [2,4): invalid
            },
            PivotEntry {
                global_rank: 20,
                local_rank: 5, // window for j=3 (0-based 2) is [4,8): valid
            },
        ]);
        assert_eq!(set.invalid_pivots(0), vec![1]);
    }

    #[test]
    fn find_pivot_by_global_rank() {
        let (_codec, set) = sample_set();
        assert_eq!(set.find_pivot_by_global(0, 17), Some(1));
        assert_eq!(set.find_pivot_by_global(0, 4), None);
        assert_eq!(set.find_pivot_by_global(2, 1), Some(0));
    }
}
