//! Bit-level packing used by the compressed sketch and prefix sets.
//!
//! §4.1 and §4.4 of the paper pack pivot and prefix descriptors into single
//! blocks by spending only `lg(f·l)` bits on a global rank and `lg l` bits on
//! a local rank. This module provides the writer/reader pair those encodings
//! use; everything is plain CPU work (free in the EM model), but doing the
//! packing for real lets the simulator verify that the compressed structures
//! genuinely fit in one block.

/// Number of bits needed to express values in `0..=max_value`.
pub fn bits_for(max_value: u64) -> usize {
    if max_value == 0 {
        1
    } else {
        (64 - max_value.leading_zeros()) as usize
    }
}

/// An append-only bit writer producing a `Vec<u64>` of words.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    words: Vec<u64>,
    bits: usize,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the lowest `bits` bits of `value` (`bits ≤ 64`). `value` must
    /// fit in `bits` bits.
    pub fn write(&mut self, value: u64, bits: usize) {
        debug_assert!(bits <= 64);
        debug_assert!(
            bits == 64 || value < (1u64 << bits),
            "value {value} does not fit in {bits} bits"
        );
        if bits == 0 {
            return;
        }
        let word_idx = self.bits / 64;
        let offset = self.bits % 64;
        if word_idx == self.words.len() {
            self.words.push(0);
        }
        self.words[word_idx] |= value << offset;
        let spill = offset + bits;
        if spill > 64 {
            let high = value >> (64 - offset);
            self.words.push(high);
        }
        self.bits += bits;
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bits
    }

    /// Finish and return the packed words.
    pub fn finish(self) -> Vec<u64> {
        self.words
    }
}

/// A sequential reader over packed words produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Start reading from the beginning of `words`.
    pub fn new(words: &'a [u64]) -> Self {
        Self { words, pos: 0 }
    }

    /// Read the next `bits` bits as an unsigned value.
    pub fn read(&mut self, bits: usize) -> u64 {
        debug_assert!(bits <= 64);
        if bits == 0 {
            return 0;
        }
        let word_idx = self.pos / 64;
        let offset = self.pos % 64;
        let mut value = self.words[word_idx] >> offset;
        if offset + bits > 64 {
            value |= self.words[word_idx + 1] << (64 - offset);
        }
        self.pos += bits;
        if bits < 64 {
            value & ((1u64 << bits) - 1)
        } else {
            value
        }
    }

    /// Current read position in bits.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bits_for_covers_edges() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let items: Vec<(u64, usize)> = vec![
            (5, 3),
            (0, 1),
            (1023, 10),
            (1, 1),
            (u64::MAX, 64),
            (77, 7),
            (0, 5),
            ((1 << 33) - 1, 33),
        ];
        for &(v, b) in &items {
            w.write(v, b);
        }
        let total_bits: usize = items.iter().map(|(_, b)| *b).sum();
        assert_eq!(w.bit_len(), total_bits);
        let words = w.finish();
        let mut r = BitReader::new(&words);
        for &(v, b) in &items {
            assert_eq!(r.read(b), v, "width {b}");
        }
        assert_eq!(r.position(), total_bits);
    }

    #[test]
    fn packing_is_dense() {
        let mut w = BitWriter::new();
        for i in 0..100u64 {
            w.write(i % 8, 3);
        }
        let words = w.finish();
        assert_eq!(words.len(), (100usize * 3).div_ceil(64));
    }

    /// Formerly a proptest; now seeded random cases with the same shape.
    #[test]
    fn roundtrip_random() {
        for case in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(0xB17 ^ case);
            let n = rng.gen_range(0usize..200);
            let items: Vec<(u64, usize)> = (0..n)
                .map(|_| {
                    let b = rng.gen_range(1usize..64);
                    let v = rng.gen::<u64>();
                    (if b == 64 { v } else { v & ((1u64 << b) - 1) }, b)
                })
                .collect();
            let mut w = BitWriter::new();
            for &(v, b) in &items {
                w.write(v, b);
            }
            let words = w.finish();
            let mut r = BitReader::new(&words);
            for &(v, b) in &items {
                assert_eq!(r.read(b), v, "case {case}, width {b}");
            }
        }
    }
}
