//! The logarithmic sketch of a set of scores.

/// A *logarithmic sketch* of a set `L` of distinct scores: an array of
/// `⌊lg |L|⌋ + 1` pivots where the `j`-th pivot (1-based) is an element of `L`
/// whose rank in `L` (paper convention: `rank(e) = #{e' ≥ e}`) lies in
/// `[2^(j-1), 2^j)`.
///
/// Any element in the rank window is a valid pivot; static constructions in
/// this crate pick the element of rank `min(⌊3·2^(j-1)/2⌋, |L|)` (clamped into
/// the window), matching the slack the paper's dynamic maintenance relies on
/// so that `Ω(2^j)` updates are needed before the pivot drifts out of its
/// window again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    pivots: Vec<u64>,
}

impl Sketch {
    /// Number of pivots a sketch of a set of `len` elements has:
    /// `⌊log2 len⌋ + 1` (so that the `j`-th rank window `[2^(j-1), 2^j)`
    /// always contains at least one feasible rank).
    pub fn pivot_count(len: usize) -> usize {
        if len == 0 {
            0
        } else {
            (len.ilog2() + 1) as usize
        }
    }

    /// The rank (1-based, paper convention) that the `j`-th pivot (1-based) is
    /// given at construction / repair time: `min(⌊3·2^(j-1)/2⌋, len)`, clamped
    /// into the legal window `[2^(j-1), 2^j)`.
    pub fn target_rank(j: usize, len: usize) -> u64 {
        debug_assert!(j >= 1);
        let lo = 1u64 << (j - 1);
        let hi = (1u64 << j) - 1;
        let target = (3 * lo) / 2;
        target.clamp(lo, hi).min(len as u64).max(lo.min(len as u64))
    }

    /// Build a sketch from scores sorted in **descending** order (rank `r`
    /// element at index `r - 1`).
    pub fn from_sorted_desc(desc: &[u64]) -> Self {
        debug_assert!(
            desc.windows(2).all(|w| w[0] > w[1]),
            "scores must be distinct and descending"
        );
        let m = Self::pivot_count(desc.len());
        let mut pivots = Vec::with_capacity(m);
        for j in 1..=m {
            let rank = Self::target_rank(j, desc.len());
            pivots.push(desc[(rank - 1) as usize]);
        }
        Self { pivots }
    }

    /// Build a sketch by fetching elements by rank: `fetch(r)` must return the
    /// element of rank `r` (1-based). Used when the underlying set lives in a
    /// B-tree and each fetch costs `O(log_B l)` I/Os.
    pub fn from_ranked(len: usize, mut fetch: impl FnMut(u64) -> u64) -> Self {
        let m = Self::pivot_count(len);
        let mut pivots = Vec::with_capacity(m);
        for j in 1..=m {
            pivots.push(fetch(Self::target_rank(j, len)));
        }
        Self { pivots }
    }

    /// The pivot array (index `j - 1` holds the `j`-th pivot).
    pub fn pivots(&self) -> &[u64] {
        &self.pivots
    }

    /// Number of pivots.
    pub fn len(&self) -> usize {
        self.pivots.len()
    }

    /// Whether the sketch is empty (underlying set empty).
    pub fn is_empty(&self) -> bool {
        self.pivots.is_empty()
    }

    /// Lower bound on the rank of `x` in the sketched set derived from the
    /// pivots alone: `2^(j*-1)` where `j*` is the largest index whose pivot is
    /// `≥ x` (0 when no pivot is `≥ x`, i.e. `x` is larger than the set's
    /// maximum).
    pub fn rank_lower_bound(&self, x: u64) -> u64 {
        let mut lb = 0;
        for (idx, &p) in self.pivots.iter().enumerate() {
            if p >= x {
                lb = 1u64 << idx;
            }
        }
        // `1 << idx` is 2^(j-1) for j = idx + 1.
        lb
    }

    /// Upper bound on the rank of `x` derived from the pivots: strictly less
    /// than `2^(j*+1)` (and 0 when no pivot is `≥ x`). Together with
    /// [`rank_lower_bound`](Self::rank_lower_bound) this brackets the true
    /// rank within a factor 4.
    pub fn rank_upper_bound(&self, x: u64, set_len: usize) -> u64 {
        let mut j_star = 0usize;
        for (idx, &p) in self.pivots.iter().enumerate() {
            if p >= x {
                j_star = idx + 1;
            }
        }
        if j_star == 0 {
            0
        } else {
            ((1u64 << (j_star + 1)) - 1).min(set_len as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank_in;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn desc(n: u64) -> Vec<u64> {
        (1..=n).rev().map(|i| i * 10).collect()
    }

    #[test]
    fn pivot_count_follows_paper() {
        assert_eq!(Sketch::pivot_count(0), 0);
        assert_eq!(Sketch::pivot_count(1), 1);
        assert_eq!(Sketch::pivot_count(2), 2);
        assert_eq!(Sketch::pivot_count(3), 2);
        assert_eq!(Sketch::pivot_count(8), 4);
        assert_eq!(Sketch::pivot_count(1000), 10);
    }

    #[test]
    fn pivots_sit_in_their_rank_windows() {
        for n in [1u64, 2, 3, 5, 17, 64, 100, 513] {
            let values = desc(n);
            let sketch = Sketch::from_sorted_desc(&values);
            for (idx, &p) in sketch.pivots().iter().enumerate() {
                let j = idx + 1;
                let r = rank_in(&values, p);
                let lo = 1u64 << (j - 1);
                let hi = 1u64 << j;
                assert!(
                    r >= lo.min(n) && r < hi.max(2),
                    "n={n} pivot {j} has rank {r}, window [{lo},{hi})"
                );
            }
        }
    }

    #[test]
    fn from_ranked_matches_from_sorted() {
        let values = desc(300);
        let a = Sketch::from_sorted_desc(&values);
        let b = Sketch::from_ranked(values.len(), |r| values[(r - 1) as usize]);
        assert_eq!(a, b);
    }

    #[test]
    fn bounds_bracket_true_rank() {
        let values = desc(777);
        let sketch = Sketch::from_sorted_desc(&values);
        for probe in [5u64, 10, 775, 2000, 7770, 10000] {
            let true_rank = rank_in(&values, probe);
            let lb = sketch.rank_lower_bound(probe);
            let ub = sketch.rank_upper_bound(probe, values.len());
            assert!(
                lb <= true_rank,
                "lb {lb} > rank {true_rank} (probe {probe})"
            );
            assert!(
                ub >= true_rank,
                "ub {ub} < rank {true_rank} (probe {probe})"
            );
            if lb > 0 {
                assert!(ub <= 4 * lb, "bracket wider than factor 4");
            }
        }
    }

    /// Formerly a proptest; now seeded random cases with the same shape.
    #[test]
    fn lower_bound_is_sound() {
        for case in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(0x5ce7 ^ case);
            let n = rng.gen_range(1usize..600);
            let probe = rng.gen_range(0u64..10_000);
            let values: Vec<u64> = (1..=n as u64).rev().map(|i| i * 7).collect();
            let sketch = Sketch::from_sorted_desc(&values);
            let true_rank = rank_in(&values, probe);
            assert!(sketch.rank_lower_bound(probe) <= true_rank, "case {case}");
            assert!(
                sketch.rank_upper_bound(probe, n) >= true_rank || true_rank == 0,
                "case {case}"
            );
        }
    }
}
