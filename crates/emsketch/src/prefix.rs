//! The compressed prefix set of Lemma 8 (§4.4): for every group `G_i`, the
//! global ranks of its `s` largest elements, packed into one block, so that a
//! single I/O yields the global rank of the element of any small local rank.

use crate::bitpack::{bits_for, BitReader, BitWriter};

/// Bit widths for packing a prefix set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCodec {
    /// Number of groups `f`.
    pub f: usize,
    /// Prefix length `s` (the paper's `√B · log_B(f·l)`).
    pub prefix_cap: usize,
    /// Bits per global rank.
    pub global_bits: usize,
    /// Bits per per-group entry count.
    pub count_bits: usize,
}

impl PrefixCodec {
    /// Codec for `f` groups with at most `l_cap` elements each and prefixes of
    /// length `prefix_cap`.
    pub fn new(f: usize, l_cap: usize, prefix_cap: usize) -> Self {
        Self {
            f,
            prefix_cap: prefix_cap.max(1),
            global_bits: bits_for((f as u64) * (l_cap as u64)),
            count_bits: bits_for(prefix_cap.max(1) as u64),
        }
    }

    /// Worst-case packed size in 64-bit words.
    pub fn max_words(&self) -> usize {
        let bits = self.f * (self.count_bits + self.prefix_cap * self.global_bits);
        bits.div_ceil(64)
    }
}

/// Decoded prefix set: `per_group[i][r-1]` is the global rank of the element
/// of local rank `r` in `G_i`, for `r` up to the prefix length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixSet {
    per_group: Vec<Vec<u64>>,
}

impl PrefixSet {
    /// An empty prefix set for `f` groups.
    pub fn empty(f: usize) -> Self {
        Self {
            per_group: vec![Vec::new(); f],
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.per_group.len()
    }

    /// Global rank of the element with local rank `local_rank` in `group`, if
    /// it is covered by the prefix.
    pub fn global_rank(&self, group: usize, local_rank: u64) -> Option<u64> {
        if local_rank == 0 {
            return None;
        }
        self.per_group[group].get(local_rank as usize - 1).copied()
    }

    /// Number of entries stored for `group`.
    pub fn len(&self, group: usize) -> usize {
        self.per_group[group].len()
    }

    /// Whether no group stores any entry.
    pub fn is_empty(&self) -> bool {
        self.per_group.iter().all(|g| g.is_empty())
    }

    /// Direct access for rebuilds.
    pub fn entries_mut(&mut self, group: usize) -> &mut Vec<u64> {
        &mut self.per_group[group]
    }

    // ----- encoding -----

    /// Pack into 64-bit words.
    pub fn encode(&self, codec: &PrefixCodec) -> Vec<u64> {
        assert_eq!(self.per_group.len(), codec.f);
        let mut w = BitWriter::new();
        for group in &self.per_group {
            debug_assert!(group.len() <= codec.prefix_cap);
            w.write(group.len() as u64, codec.count_bits);
            for &rank in group {
                w.write(rank, codec.global_bits);
            }
        }
        w.finish()
    }

    /// Decode from packed words.
    pub fn decode(codec: &PrefixCodec, words: &[u64]) -> Self {
        let mut r = BitReader::new(words);
        let mut per_group = Vec::with_capacity(codec.f);
        for _ in 0..codec.f {
            let count = r.read(codec.count_bits) as usize;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(r.read(codec.global_bits));
            }
            per_group.push(entries);
        }
        Self { per_group }
    }

    // ----- maintenance (§4.4) -----

    /// Shift every stored global rank `≥ new_global_rank` up by one (an
    /// element of that rank was inserted somewhere in `G`).
    pub fn apply_insert_shift(&mut self, new_global_rank: u64) {
        for group in &mut self.per_group {
            for rank in group.iter_mut() {
                if *rank >= new_global_rank {
                    *rank += 1;
                }
            }
        }
    }

    /// Shift every stored global rank `> old_global_rank` down by one (the
    /// element of that rank was deleted). An entry equal to the deleted rank
    /// must be removed by the caller first.
    pub fn apply_delete_shift(&mut self, old_global_rank: u64) {
        for group in &mut self.per_group {
            for rank in group.iter_mut() {
                if *rank > old_global_rank {
                    *rank -= 1;
                }
            }
        }
    }

    /// Insert an element of `group` with the given local and (post-shift)
    /// global rank; entries beyond `prefix_cap` fall off the end.
    pub fn insert(&mut self, group: usize, local_rank: u64, global_rank: u64, prefix_cap: usize) {
        let entries = &mut self.per_group[group];
        let pos = (local_rank as usize - 1).min(entries.len());
        entries.insert(pos, global_rank);
        entries.truncate(prefix_cap);
    }

    /// Remove the entry of `group` at `local_rank` (if covered). The caller is
    /// responsible for refilling the last slot from the B-trees.
    pub fn remove(&mut self, group: usize, local_rank: u64) -> Option<u64> {
        let entries = &mut self.per_group[group];
        let idx = local_rank as usize - 1;
        if idx < entries.len() {
            Some(entries.remove(idx))
        } else {
            None
        }
    }

    /// Check consistency against a full description of the groups (tests):
    /// `groups_desc[i]` are the global ranks of `G_i`'s elements in descending
    /// element order (i.e. index 0 is the largest element of `G_i`).
    pub fn check_against(&self, groups_desc: &[Vec<u64>], prefix_cap: usize) {
        for (i, expected) in groups_desc.iter().enumerate() {
            let want: Vec<u64> = expected.iter().copied().take(prefix_cap).collect();
            assert_eq!(
                self.per_group[i], want,
                "prefix of group {i} disagrees with oracle"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let codec = PrefixCodec::new(3, 100, 8);
        let mut p = PrefixSet::empty(3);
        p.entries_mut(0).extend([1, 5, 9]);
        p.entries_mut(2).extend([2, 3]);
        let words = p.encode(&codec);
        assert!(words.len() <= codec.max_words());
        assert_eq!(PrefixSet::decode(&codec, &words), p);
    }

    #[test]
    fn typical_parameters_fit_one_block() {
        // f = 16 groups, l = 1024, prefix of √B·log_B(fl) ≈ 23·2 ≈ 46 entries.
        let codec = PrefixCodec::new(16, 1024, 46);
        assert!(codec.max_words() <= 512, "{} words", codec.max_words());
    }

    #[test]
    fn shifts_and_inserts() {
        let mut p = PrefixSet::empty(2);
        p.entries_mut(0).extend([2, 7]);
        p.entries_mut(1).extend([1, 4]);
        // Insert an element that takes global rank 4 into group 0 at local rank 2.
        p.apply_insert_shift(4);
        assert_eq!(p.global_rank(0, 2), Some(8));
        assert_eq!(p.global_rank(1, 2), Some(5));
        p.insert(0, 2, 4, 4);
        assert_eq!(p.global_rank(0, 1), Some(2));
        assert_eq!(p.global_rank(0, 2), Some(4));
        assert_eq!(p.global_rank(0, 3), Some(8));
        // Delete the element of global rank 1 (group 1, local rank 1).
        let removed = p.remove(1, 1);
        assert_eq!(removed, Some(1));
        p.apply_delete_shift(1);
        assert_eq!(p.global_rank(1, 1), Some(4));
        assert_eq!(p.global_rank(0, 1), Some(1));
    }

    #[test]
    fn truncates_at_capacity() {
        let mut p = PrefixSet::empty(1);
        p.entries_mut(0).extend([1, 2, 3]);
        p.insert(0, 1, 10, 3);
        assert_eq!(p.len(0), 3);
        assert_eq!(p.global_rank(0, 1), Some(10));
        assert_eq!(p.global_rank(0, 3), Some(2));
        assert_eq!(p.global_rank(0, 4), None);
    }
}
