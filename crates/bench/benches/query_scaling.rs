//! Wall-clock bench backing experiments E1/E2: latency and throughput of
//! top-k queries as `n` and `k` grow (the I/O counts themselves are
//! produced by the `exp_query_vs_n` / `exp_query_vs_k` binaries).
//!
//! Timed explicitly (a handful of samples, mean reported) so every number
//! also lands in `BENCH_query_scaling.json` when `--save-json` is passed —
//! see README "Benchmark JSON export".

use std::time::Instant;

use topk_bench::json::JsonRow;
use topk_bench::{build_index, small_machine, uniform_points};
use topk_core::{RankedIndex, SmallKEngine};
use workload::{Query, QueryGen};

const SAMPLES: usize = 10;

/// Mean queries/sec over `SAMPLES` timed passes of the whole query list
/// (one warm-up pass first, as the criterion shim does).
fn queries_per_sec(index: &dyn RankedIndex, queries: &[Query]) -> f64 {
    let run = || {
        for q in queries {
            std::hint::black_box(index.query(q.x1, q.x2, q.k).unwrap());
        }
    };
    run();
    let start = Instant::now();
    for _ in 0..SAMPLES {
        run();
    }
    (SAMPLES * queries.len()) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let mut rows: Vec<JsonRow> = Vec::new();

    println!("query_scaling/topk_k10 — n sweep at k = 10, 10% selectivity");
    println!("{:>12} {:>16} {:>16}", "n", "queries/sec", "us/query");
    for &n in &[1usize << 13, 1 << 15, 1 << 17] {
        let pts = uniform_points(7, n);
        let index = build_index(small_machine(), SmallKEngine::Polylog, 64, &pts);
        let queries = QueryGen::new(0.1, 10, 3).generate(&pts, 8);
        let qps = queries_per_sec(&index, &queries);
        println!("{n:>12} {qps:>16.0} {:>16.1}", 1e6 / qps);
        rows.push(
            JsonRow::new("topk_k10", "queries_per_sec", qps)
                .topology("single")
                .threads(1)
                .param(format!("n={n}")),
        );
    }

    // Dense k sweep at fixed n (every power of two through the small-k →
    // large-k crossover at l = 128): adjacent steps make a residual k-cliff
    // visible as a throughput drop between neighbours, which is what the CI
    // perf-sanity gate checks.
    println!("\nquery_scaling/topk_by_k — k sweep at n = 32768, 25% selectivity");
    println!("{:>12} {:>16} {:>16}", "k", "queries/sec", "us/query");
    let pts = uniform_points(11, 1 << 15);
    let index = build_index(small_machine(), SmallKEngine::Polylog, 128, &pts);
    for &k in &[1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
        let queries = QueryGen::new(0.25, k, 5).generate(&pts, 8);
        let qps = queries_per_sec(&index, &queries);
        println!("{k:>12} {qps:>16.0} {:>16.1}", 1e6 / qps);
        rows.push(
            JsonRow::new("topk_by_k", "queries_per_sec", qps)
                .topology("single")
                .threads(1)
                .param(format!("k={k}")),
        );
    }

    topk_bench::json::save_if_requested("query_scaling", &rows);
}
