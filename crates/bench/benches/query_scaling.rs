//! Criterion bench backing experiments E1/E2: wall-clock latency of top-k
//! queries as n and k grow (the I/O counts themselves are produced by the
//! `exp_query_vs_n` / `exp_query_vs_k` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_bench::{build_index, small_machine, uniform_points};
use topk_core::SmallKEngine;
use workload::QueryGen;

fn query_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_scaling");
    group.sample_size(10);
    for &n in &[1usize << 13, 1 << 15, 1 << 17] {
        let pts = uniform_points(7, n);
        let index = build_index(small_machine(), SmallKEngine::Polylog, 64, &pts);
        let queries = QueryGen::new(0.1, 10, 3).generate(&pts, 8);
        group.bench_with_input(BenchmarkId::new("topk_k10", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(index.query(q.x1, q.x2, q.k).unwrap());
                }
            })
        });
    }
    // k sweep at fixed n: exercises the small-k → large-k crossover.
    let pts = uniform_points(11, 1 << 15);
    let index = build_index(small_machine(), SmallKEngine::Polylog, 128, &pts);
    for &k in &[1usize, 16, 128, 1024, 4096] {
        let queries = QueryGen::new(0.25, k, 5).generate(&pts, 8);
        group.bench_with_input(BenchmarkId::new("topk_by_k", k), &k, |b, _| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(index.query(q.x1, q.x2, q.k).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, query_scaling);
criterion_main!(benches);
