//! Multi-threaded smoke benchmark: read-side scaling of the concurrent index,
//! the lock-amortization win of batched writers, and the multi-writer
//! goodput win of range sharding.
//!
//! Part 1 spawns 1, 2, 4 and 8 query threads against one shared
//! [`ConcurrentTopK`] and reports wall-clock throughput: queries take the
//! shared read lock and only contend on the device's pool mutex, so
//! throughput should grow with the thread count until that mutex saturates.
//!
//! Part 2 measures the *mixed* workload: a fixed job of queries plus an
//! update stream, committed first point-wise (one write-lock acquisition and
//! one rebuild check per op), then as [`UpdateBatch`]es of 64 and 1024 ops
//! through [`ConcurrentTopK::apply`] — one acquisition per batch, batch-wide
//! validation (one `O(n/B)` scan instead of per-op descents), and, for
//! batches that rewrite a sizable fraction of the set, the paper's global
//! rebuild in place of per-op maintenance. The whole-workload queries/sec is
//! the amortization number the API redesign claims — measured here, not
//! asserted.
//!
//! Part 3 is the sharded multi-writer scenario: a fixed job of batched
//! updates over disjoint coordinate territories, committed by 1, 2, 4 and 8
//! writer threads against (a) the coarse-locked [`ConcurrentTopK`], where
//! every batch serialises on one write lock, and (b) a [`ShardedTopK`] with
//! one shard per territory, where disjoint-territory batches take disjoint
//! shard locks and commit in parallel. The updates/sec ratio at ≥ 4 threads
//! is the write-scaling number the sharding tentpole claims.

use std::sync::Arc;
use std::time::{Duration, Instant};

use topk_bench::json::JsonRow;
use topk_bench::{small_machine, uniform_points};
use topk_core::{
    ConcurrentTopK, Point, QueryRequest, RankedIndex, ShardedTopK, SmallKEngine, UpdateBatch,
    UpdateOp,
};
use workload::QueryGen;

/// Build a concurrent index preloaded with the first `n` of `n + extra`
/// generated points; returns (index, preloaded, fresh) where `fresh` is the
/// collision-free update stream. Query sets are generated per reader thread
/// by the harnesses below — a shared set would measure stride overlap and
/// harness serialization, not the index.
fn build(n: usize, extra: usize) -> (ConcurrentTopK, Vec<Point>, Vec<Point>) {
    let device = emsim::Device::new(small_machine());
    let index = ConcurrentTopK::builder()
        .device(&device)
        .small_k(SmallKEngine::Polylog)
        .crossover_l(64)
        .expected_n(n + extra)
        .build_concurrent()
        .expect("bench parameters are valid");
    let all = uniform_points(17, n + extra);
    index.bulk_build(&all[..n]).expect("distinct points");
    let (preloaded, fresh) = all.split_at(n);
    (index, preloaded.to_vec(), fresh.to_vec())
}

/// The query set reader thread `t` owns: same distribution for every
/// thread, a distinct seed per thread so threads neither share the backing
/// allocation nor walk the same coordinate sequence in lockstep.
fn reader_queries(points: &[Point], t: usize) -> Vec<workload::Query> {
    QueryGen::new(0.05, 10, 23 + 1000 * t as u64).generate(points, 256)
}

/// Read-side scaling measurement, fixed-window style: every thread owns its
/// seeded query set, a barrier aligns the start (thread spawn cost stays
/// outside the window), and each thread loops its queries until the window
/// elapses — the job grows with the thread count instead of splitting a
/// fixed 256-query job into ever-smaller slivers (the previous harness — at
/// 8 threads it timed 32 queries per thread, mostly measuring spawn
/// overhead). Shared with the `perf_sanity` CI gate via
/// [`topk_bench::read_qps`].
fn run_readers(index: &ConcurrentTopK, points: &[Point], threads: usize) -> f64 {
    topk_bench::read_qps(index, points, threads, Duration::from_millis(300))
}

/// A fixed mixed workload: 4 readers each serve a fixed quota of queries
/// while one writer commits the same `updates`-op stream (alternating
/// insert/delete) in batches of `batch_size`. Returns queries/sec over the
/// time to finish *everything* — the system-goodput number, where the cost
/// of taking the write lock once per point (4096 contended acquisitions,
/// each draining in-flight readers) shows up directly.
fn run_mixed(n: usize, updates: usize, queries_per_reader: usize, batch_size: usize) -> f64 {
    let (index, preloaded, fresh) = build(n, updates);
    // Alternate inserting a fresh point and deleting a preloaded one, so the
    // stream exercises both update paths and the index size stays stable.
    let ops: Vec<UpdateOp> = (0..updates)
        .map(|i| {
            if i % 2 == 0 {
                UpdateOp::Insert(fresh[i])
            } else {
                UpdateOp::Delete(preloaded[i])
            }
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let index = &index;
        let ops = &ops;
        scope.spawn(move || {
            for chunk in ops.chunks(batch_size) {
                let batch = UpdateBatch::from_ops(chunk.iter().copied());
                index.apply(&batch).expect("collision-free update stream");
            }
        });
        for t in 0..4usize {
            let queries = reader_queries(&preloaded, t);
            scope.spawn(move || {
                for i in 0..queries_per_reader {
                    let q = &queries[i % queries.len()];
                    std::hint::black_box(index.query(q.x1, q.x2, q.k).unwrap());
                }
            });
        }
    });
    (4 * queries_per_reader) as f64 / start.elapsed().as_secs_f64()
}

/// Part 3 workload: `writers` threads each commit their own territories'
/// batched update streams (alternating fresh inserts and preload deletes,
/// batches of 256) against `index`. All territories are always processed —
/// the thread count only changes how much parallelism is available — so the
/// job is fixed and updates/sec is comparable across rows. Returns
/// updates/sec over the time to drain everything.
fn run_multi_writer(
    index: &dyn RankedIndex,
    territory_ops: &[Vec<UpdateOp>],
    writers: usize,
) -> f64 {
    const BATCH: usize = 256;
    let total_ops: usize = territory_ops.iter().map(Vec::len).sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            scope.spawn(move || {
                for ops in territory_ops.iter().skip(w).step_by(writers) {
                    for chunk in ops.chunks(BATCH) {
                        let batch = UpdateBatch::from_ops(chunk.iter().copied());
                        index.apply(&batch).expect("territory streams are disjoint");
                    }
                }
            });
        }
    });
    total_ops as f64 / start.elapsed().as_secs_f64()
}

/// Build the part 3 fixture: `territories` disjoint coordinate territories,
/// half of each preloaded, plus the per-territory alternating
/// insert/delete op streams over the other half.
fn multi_writer_fixture(territories: usize, per: usize) -> (Vec<Point>, Vec<Vec<UpdateOp>>) {
    let (_span, terr) = workload::territories(83, territories, 2 * per);
    let preload: Vec<Point> = terr.iter().flat_map(|t| t[..per].to_vec()).collect();
    let ops = terr
        .iter()
        .map(|t| {
            (0..per)
                .map(|i| {
                    if i % 2 == 0 {
                        UpdateOp::Insert(t[per + i])
                    } else {
                        UpdateOp::Delete(t[i])
                    }
                })
                .collect()
        })
        .collect();
    (preload, ops)
}

/// How the part 4 slow paginating reader consumes its pages.
#[derive(Clone, Copy, PartialEq)]
enum SlowReader {
    /// No reader at all: the writer-goodput baseline.
    None,
    /// The pre-cursor style: hold the read guard for the whole pagination,
    /// sleeping between pages *with the guard held* — every writer blocks
    /// until the last page is consumed.
    GuardHeld,
    /// The cursor read plane: one read-lock acquisition per page, the
    /// between-page idle time costs writers nothing.
    Cursor,
}

/// Part 4 workload: one writer commits a fixed job of batched updates while
/// a slow dashboard-style reader paginates `pages × page` results, idling
/// `pause` between pages. Returns the writer's updates/sec — the goodput
/// number the cursor redesign claims back from the guard-held stream.
fn run_slow_reader_goodput(
    n: usize,
    updates: usize,
    batch: usize,
    pages: usize,
    page: usize,
    pause: Duration,
    style: SlowReader,
) -> f64 {
    let (index, preloaded, fresh) = build(n, updates);
    let index = Arc::new(index);
    let ops: Vec<UpdateOp> = (0..updates)
        .map(|i| {
            if i % 2 == 0 {
                UpdateOp::Insert(fresh[i])
            } else {
                UpdateOp::Delete(preloaded[i])
            }
        })
        .collect();
    let k = pages * page;
    std::thread::scope(|scope| {
        let writer = {
            let index = Arc::clone(&index);
            let ops = &ops;
            scope.spawn(move || {
                let start = Instant::now();
                for chunk in ops.chunks(batch) {
                    let batch = UpdateBatch::from_ops(chunk.iter().copied());
                    index.apply(&batch).expect("collision-free update stream");
                }
                start.elapsed()
            })
        };
        match style {
            SlowReader::None => {}
            SlowReader::GuardHeld => {
                let index = Arc::clone(&index);
                scope.spawn(move || {
                    let guard = index.read();
                    let mut stream = guard
                        .stream(QueryRequest::range(0, u64::MAX).top(k))
                        .expect("valid request");
                    for _ in 0..pages {
                        let page: Vec<Point> = stream.by_ref().take(page).collect();
                        std::hint::black_box(&page);
                        if page.is_empty() {
                            break;
                        }
                        // The dashboard renders… with the guard still held.
                        std::thread::sleep(pause);
                    }
                });
            }
            SlowReader::Cursor => {
                let index = Arc::clone(&index);
                scope.spawn(move || {
                    let mut cursor = index
                        .cursor(QueryRequest::range(0, u64::MAX).top(k).page_size(page))
                        .expect("valid request");
                    for _ in 0..pages {
                        let page = cursor.next_batch().expect("per-round cursor");
                        std::hint::black_box(&page);
                        if page.is_empty() {
                            break;
                        }
                        // Idle with no lock held: writers proceed.
                        std::thread::sleep(pause);
                    }
                });
            }
        }
        let elapsed = writer.join().expect("writer thread");
        updates as f64 / elapsed.as_secs_f64()
    })
}

fn main() {
    // `--save-json` collects every measured number into
    // BENCH_concurrent_reads.json (README "Benchmark JSON export").
    let mut rows: Vec<JsonRow> = Vec::new();
    let n = 1 << 15;
    let (index, preloaded, _) = build(n, 0);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "read-side scaling, n = {n}, 256 owned queries per thread looped for a \
         300 ms window, {cores} core(s) available"
    );
    println!("(speedup is capped by the core count: expect ~1.0x on a 1-core host)\n");
    println!("{:>8} {:>16}", "threads", "queries/sec");
    let mut base = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let qps = run_readers(&index, &preloaded, threads);
        if threads == 1 {
            base = qps;
        }
        println!("{threads:>8} {qps:>16.0}   ({:.2}x)", qps / base);
        rows.push(
            JsonRow::new("read_scaling", "queries_per_sec", qps)
                .topology("concurrent")
                .threads(threads)
                .param(format!("n={n}")),
        );
    }

    // Mixed batched-writer scenario: the same fixed workload committed with
    // different batch sizes. Larger batches amortize the write lock, the
    // validation descents and — once a batch rewrites ≥ 1/16 of the set —
    // the structure maintenance itself (one global rebuild instead of
    // per-op descents), so the whole mixed workload finishes faster
    // (batch = 1 is the seed's per-point locking, via apply).
    let hot_n = 8192;
    let updates = 8192;
    let queries_per_reader = 4096;
    println!(
        "\nmixed goodput: 4 readers × {queries_per_reader} queries + 1 writer × {updates} updates"
    );
    println!("{:>10} {:>24}", "batch", "queries/sec (workload)");
    let mut qps_batch1 = 0.0;
    for batch_size in [1usize, 64, 1024] {
        let qps = run_mixed(hot_n, updates, queries_per_reader, batch_size);
        if batch_size == 1 {
            qps_batch1 = qps;
        }
        println!(
            "{batch_size:>10} {qps:>24.0}   ({:.2}x vs batch=1)",
            qps / qps_batch1
        );
        rows.push(
            JsonRow::new("mixed_goodput", "queries_per_sec", qps)
                .topology("concurrent")
                .threads(5)
                .param(format!("batch={batch_size}")),
        );
    }

    // Sharded multi-writer scenario: the same fixed job of disjoint
    // territory batches, drained by 1–8 writers, against the coarse lock
    // and against one-shard-per-territory range sharding. The coarse lock
    // serialises every batch regardless of thread count; the sharded index
    // commits disjoint-shard batches in parallel, so its goodput should
    // rise with writers until the core count or the device's pool mutex
    // saturates (expect ~1.0x on a 1-core host).
    const TERRITORIES: usize = 8;
    const PER_TERRITORY: usize = 4096;
    let (preload, territory_ops) = multi_writer_fixture(TERRITORIES, PER_TERRITORY);
    println!(
        "\nmulti-writer batch goodput: {TERRITORIES} territories × {PER_TERRITORY} updates, \
         batches of 256"
    );
    println!(
        "{:>8} {:>20} {:>20} {:>10}",
        "writers", "coarse (upd/s)", "sharded (upd/s)", "ratio"
    );
    for writers in [1usize, 2, 4, 8] {
        let device = emsim::Device::new(small_machine());
        let coarse = ConcurrentTopK::builder()
            .device(&device)
            .small_k(SmallKEngine::Polylog)
            .crossover_l(64)
            .expected_n(preload.len() * 2)
            .build_concurrent()
            .expect("bench parameters are valid");
        coarse.bulk_build(&preload).expect("distinct points");
        let coarse_ups = run_multi_writer(&coarse, &territory_ops, writers);

        let device = emsim::Device::new(small_machine());
        let sharded = ShardedTopK::builder()
            .device(&device)
            .small_k(SmallKEngine::Polylog)
            .crossover_l(64)
            .expected_n(preload.len() * 2)
            .shards(TERRITORIES)
            .build_sharded()
            .expect("bench parameters are valid");
        sharded.bulk_build(&preload).expect("distinct points");
        let sharded_ups = run_multi_writer(&sharded, &territory_ops, writers);

        println!(
            "{writers:>8} {coarse_ups:>20.0} {sharded_ups:>20.0} {:>9.2}x",
            sharded_ups / coarse_ups
        );
        rows.push(
            JsonRow::new("multi_writer", "updates_per_sec", coarse_ups)
                .topology("concurrent")
                .threads(writers)
                .param("batch=256"),
        );
        rows.push(
            JsonRow::new("multi_writer", "updates_per_sec", sharded_ups)
                .topology(&format!("sharded-{TERRITORIES}"))
                .threads(writers)
                .param("batch=256"),
        );
    }

    // Slow-paginating-reader scenario: one writer's fixed batched job racing
    // a dashboard that consumes 40 pages of 16 results with a 10 ms render
    // pause between pages. Holding the read guard across the pauses (the
    // only option before the cursor read plane) blocks the writer for the
    // dashboard's whole lifetime; the owned cursor re-acquires the lock per
    // page, so the writer's goodput should sit within ~10% of the no-reader
    // baseline.
    let slow_n = 8192;
    let slow_updates = 8192;
    let (pages, page, pause) = (40usize, 16usize, Duration::from_millis(10));
    println!(
        "\nwriter goodput vs a slow paginating reader: 1 writer × {slow_updates} updates \
         (batches of 64), reader = {pages} pages × {page} results, {pause:?} idle per page"
    );
    println!(
        "{:>22} {:>16} {:>16}",
        "reader", "writer upd/s", "vs baseline"
    );
    let mut baseline = 0.0;
    for (label, style) in [
        ("none (baseline)", SlowReader::None),
        ("guard-held stream", SlowReader::GuardHeld),
        ("per-round cursor", SlowReader::Cursor),
    ] {
        let ups = run_slow_reader_goodput(slow_n, slow_updates, 64, pages, page, pause, style);
        if style == SlowReader::None {
            baseline = ups;
        }
        println!("{label:>22} {ups:>16.0} {:>15.2}x", ups / baseline);
        rows.push(
            JsonRow::new("slow_reader_goodput", "updates_per_sec", ups)
                .topology("concurrent")
                .threads(2)
                .param(format!(
                    "reader={}",
                    label.split(' ').next().unwrap_or(label)
                )),
        );
    }

    topk_bench::json::save_if_requested("concurrent_reads", &rows);
}
