//! Multi-threaded smoke benchmark: read-side scaling of the concurrent index.
//!
//! Spawns 1, 2, 4 and 8 query threads against one shared [`ConcurrentTopK`]
//! (with an update thread taking write locks in the interleaved variant) and
//! reports wall-clock throughput. Queries take the shared read lock and only
//! contend on the device's pool mutex, so throughput should grow with the
//! thread count until that mutex saturates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use topk_bench::{small_machine, uniform_points};
use topk_core::{ConcurrentTopK, Point, SmallKEngine, TopKConfig};
use workload::QueryGen;

fn build(n: usize) -> (ConcurrentTopK, Vec<workload::Query>) {
    let device = emsim::Device::new(small_machine());
    let index = ConcurrentTopK::new(
        &device,
        TopKConfig {
            l: 64,
            small_k_engine: SmallKEngine::Polylog,
            ..TopKConfig::default()
        },
    );
    let pts = uniform_points(17, n);
    index.bulk_build(&pts);
    let queries = QueryGen::new(0.05, 10, 23).generate(&pts, 256);
    (index, queries)
}

fn run_readers(index: &ConcurrentTopK, queries: &[workload::Query], threads: usize) -> f64 {
    let done = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let done = &done;
            scope.spawn(move || {
                for (i, q) in queries.iter().enumerate() {
                    if i % threads == t {
                        std::hint::black_box(index.query(q.x1, q.x2, q.k));
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    done.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let n = 1 << 15;
    let (index, queries) = build(n);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "read-side scaling, n = {n}, {} queries per run, {cores} core(s) available",
        queries.len()
    );
    println!("(speedup is capped by the core count: expect ~1.0x on a 1-core host)\n");
    println!("{:>8} {:>16}", "threads", "queries/sec");
    let mut base = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let qps = run_readers(&index, &queries, threads);
        if threads == 1 {
            base = qps;
        }
        println!("{threads:>8} {qps:>16.0}   ({:.2}x)", qps / base);
    }

    // Interleaved variant: one updater takes write locks while 4 readers run.
    let (index, queries) = build(n);
    let extra = uniform_points(91, n + 4096);
    let updates: Vec<Point> = extra[n..].to_vec();
    let start = Instant::now();
    let done = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let index = &index;
        let done = &done;
        scope.spawn(move || {
            for &p in &updates {
                index.insert(p);
            }
        });
        for t in 0..4 {
            let queries = &queries;
            scope.spawn(move || {
                for (i, q) in queries.iter().enumerate() {
                    if i % 4 == t {
                        std::hint::black_box(index.query(q.x1, q.x2, q.k));
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    println!(
        "\ninterleaved: 4 readers + 1 writer (4096 inserts): {:.0} queries/sec over {:.2}s",
        done.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64(),
        start.elapsed().as_secs_f64()
    );
}
