//! Micro-benchmarks of the substrates (experiment E7 ablations): B-tree
//! operations, sketch encoding, Lemma 7 merging, and heap selection.

use criterion::{criterion_group, criterion_main, Criterion};
use embtree::BTree;
use emsim::{Device, EmConfig};
use emsketch::{lemma7, CompressedSketchSet, PivotEntry, Sketch, SketchSetCodec};
use heapsel::{select_top, VecHeap};

fn substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    group.bench_function("embtree_insert_10k", |b| {
        b.iter_batched(
            || {
                let dev = Device::new(EmConfig::default());
                BTree::<u64>::new(&dev, "bench")
            },
            |tree| {
                for i in 0..10_000u64 {
                    tree.insert(i * 2654435761 % 1_000_003);
                }
                std::hint::black_box(tree.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    let sets: Vec<Vec<u64>> = (0..16u64)
        .map(|g| (0..1000u64).map(|i| i * 16 + g + 1).rev().collect())
        .collect();
    let sketches: Vec<Sketch> = sets.iter().map(|s| Sketch::from_sorted_desc(s)).collect();
    let views: Vec<&[u64]> = sketches.iter().map(|s| s.pivots()).collect();
    group.bench_function("lemma7_merge_16x1000", |b| {
        b.iter(|| std::hint::black_box(lemma7::approx_rank_select(&views, 37)))
    });

    let codec = SketchSetCodec::new(16, 1024);
    let mut set = CompressedSketchSet::empty(16);
    for g in 0..16 {
        for j in 0..10u64 {
            set.pivots_mut(g).push(PivotEntry {
                global_rank: g as u64 * 100 + j * 7 + 1,
                local_rank: (1 << j).min(1000),
            });
        }
    }
    group.bench_function("compressed_sketch_roundtrip", |b| {
        b.iter(|| {
            let words = set.encode(&codec);
            std::hint::black_box(CompressedSketchSet::decode(&codec, &words))
        })
    });

    let (heap, root) =
        VecHeap::heapified((0..100_000u64).map(|i| i * 48271 % 0xffff_ffff).collect());
    group.bench_function("heap_select_top_100_of_100k", |b| {
        b.iter(|| std::hint::black_box(select_top(&heap, &[root.unwrap()], 100)))
    });

    group.finish();
}

criterion_group!(benches, substrates);
criterion_main!(benches);
