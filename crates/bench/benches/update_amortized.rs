//! Criterion bench backing experiment E3 (the headline result): amortized
//! update latency of the paper's structure vs the Sheng–Tao-style baseline.
//! The corresponding I/O counts are produced by `exp_update_vs_n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_bench::{build_index, small_machine, uniform_points};
use topk_core::SmallKEngine;

fn update_amortized(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_amortized");
    group.sample_size(10);
    let n = 1usize << 14;
    // One distinct point set, split into preload and a collision-free
    // insert stream (the fallible API rejects duplicate coordinates).
    let all = uniform_points(3, n + 2048);
    let preload = all[..n].to_vec();
    let batch: Vec<_> = all[n..].to_vec();
    for (label, engine) in [
        ("this_paper_polylog", SmallKEngine::Polylog),
        ("baseline_st12", SmallKEngine::St12),
    ] {
        group.bench_with_input(BenchmarkId::new("insert_batch", label), &label, |b, _| {
            b.iter_batched(
                || build_index(small_machine(), engine, 64, &preload),
                |index| {
                    for &p in &batch {
                        index.insert(p).unwrap();
                    }
                    std::hint::black_box(index.len())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, update_amortized);
criterion_main!(benches);
