//! CI perf-sanity gate: a quick k-sweep on a small index that fails (exit
//! code 1) if queries/sec drops by more than 4× between adjacent k steps.
//!
//! This is a cliff detector, not a benchmark. The incremental-escalation
//! work (persistent descent frontier + bulk pulls, DESIGN.md §6) makes
//! query cost near-linear in k: the measured worst adjacent-step drop is
//! ~2× (at a k doubling, cost at most doubles). A regression that
//! reintroduces per-round re-descent shows up as a super-linear step —
//! 4×+ between neighbours — long before it reaches the old cliff's 16×.
//! The 4× threshold leaves ~2× of headroom for shared-runner noise, and
//! each step takes the best of three timed repeats so one scheduling
//! stall cannot fake a cliff.
//!
//! A second gate guards the read plane: with the sharded buffer pool and
//! the striped read locks, 4 reader threads must clear at least 2× the
//! single-thread queries/sec (the pre-PR-8 global pool mutex pinned the
//! curve flat at ~1×). The gate needs real parallelism to mean anything,
//! so it only runs when the host has ≥ 4 cores; on smaller runners it is
//! skipped with a note (and a `$GITHUB_STEP_SUMMARY` line when CI).
//!
//! The full sweep (bigger n, JSON export) lives in the `query_scaling`
//! bench; this binary trades coverage for a sub-second runtime so it can
//! gate every CI push.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use topk_bench::{build_index, read_qps, small_machine, uniform_points};
use topk_core::{ConcurrentTopK, RankedIndex, SmallKEngine};
use workload::{Query, QueryGen};

const REPEATS: usize = 3;
const MIN_WINDOW_MS: u128 = 60;
const MAX_ADJACENT_DROP: f64 = 4.0;
/// Minimum 4-thread / 1-thread queries/sec ratio (gate only on ≥ 4 cores;
/// an unserialized read plane has headroom to near-linear there, so 2×
/// leaves room for shared-runner noise without readmitting a global pool
/// mutex, whose signature is a ~1× curve).
const MIN_READ_SCALING: f64 = 2.0;
/// Per-measurement window of the read-scaling gate.
const SCALING_WINDOW: Duration = Duration::from_millis(250);

/// The read-scaling gate: best-of-two fixed-window measurements at 1 and 4
/// reader threads (see [`topk_bench::read_qps`] for the harness
/// discipline). Returns the achieved ratio, or `None` when the host cannot
/// express 4-way parallelism and the gate was skipped.
fn read_scaling_ratio(pts: &[epst::Point]) -> Option<f64> {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cores < 4 {
        let note = format!(
            "perf_sanity: read-scaling gate skipped — {cores} core(s) < 4, \
             a wall-clock speedup gate cannot mean anything here"
        );
        println!("{note}");
        if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&path) {
                let _ = writeln!(f, "{note}");
            }
        }
        return None;
    }
    let device = emsim::Device::new(small_machine());
    let index = ConcurrentTopK::builder()
        .device(&device)
        .small_k(SmallKEngine::Polylog)
        .crossover_l(64)
        .expected_n(pts.len())
        .build_concurrent()
        .expect("gate index parameters are valid");
    index.bulk_build(pts).expect("distinct points");
    let best = |threads: usize| {
        (0..2)
            .map(|_| read_qps(&index, pts, threads, SCALING_WINDOW))
            .fold(0f64, f64::max)
    };
    let one = best(1);
    let four = best(4);
    println!(
        "read scaling: 1 thread {one:.0} q/s, 4 threads {four:.0} q/s \
         ({:.2}x, gate {MIN_READ_SCALING}x)",
        four / one
    );
    Some(four / one)
}

/// Best-of-`REPEATS` queries/sec, each repeat a ≥ `MIN_WINDOW_MS` timed
/// loop over the whole query list (warm-up pass first).
fn queries_per_sec(index: &dyn RankedIndex, queries: &[Query]) -> f64 {
    let run = || {
        for q in queries {
            std::hint::black_box(index.query(q.x1, q.x2, q.k).unwrap());
        }
    };
    run();
    let mut best = 0f64;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let mut passes = 0usize;
        while start.elapsed().as_millis() < MIN_WINDOW_MS {
            run();
            passes += 1;
        }
        let qps = (passes * queries.len()) as f64 / start.elapsed().as_secs_f64();
        best = best.max(qps);
    }
    best
}

fn main() -> ExitCode {
    // Same machine and crossover as the query_scaling k sweep, smaller n
    // for speed. Selectivity 0.25 puts ~4096 points in a typical window,
    // so the k = 2048 step still does real deep-pull work.
    let n = 1usize << 14;
    let pts = uniform_points(11, n);
    let index = build_index(small_machine(), SmallKEngine::Polylog, 128, &pts);

    println!("perf_sanity — k sweep at n = {n}, 25% selectivity");
    println!(
        "{:>8} {:>14} {:>12} {:>10}",
        "k", "queries/sec", "us/query", "step"
    );
    let mut prev: Option<(usize, f64)> = None;
    let mut worst: Option<(usize, usize, f64)> = None;
    for k in (0..=11).map(|e| 1usize << e) {
        let queries = QueryGen::new(0.25, k, 5).generate(&pts, 8);
        let qps = queries_per_sec(&index, &queries);
        let step = prev.map(|(_, p)| p / qps);
        println!(
            "{k:>8} {qps:>14.0} {:>12.1} {:>10}",
            1e6 / qps,
            step.map_or("-".into(), |s| format!("{s:.2}x")),
        );
        if let (Some((pk, _)), Some(s)) = (prev, step) {
            if worst.is_none_or(|(_, _, w)| s > w) {
                worst = Some((pk, k, s));
            }
        }
        prev = Some((k, qps));
    }

    let (pk, k, s) = worst.expect("sweep has at least two steps");
    if s > MAX_ADJACENT_DROP {
        eprintln!(
            "perf_sanity FAIL: throughput dropped {s:.2}x from k = {pk} to k = {k} \
             (gate: {MAX_ADJACENT_DROP}x) — a k-cliff is back in the query hot path"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "perf_sanity OK: worst adjacent drop {s:.2}x (k = {pk} -> {k}), gate {MAX_ADJACENT_DROP}x"
    );

    match read_scaling_ratio(&pts) {
        Some(ratio) if ratio < MIN_READ_SCALING => {
            eprintln!(
                "perf_sanity FAIL: 4-thread read scaling {ratio:.2}x is below the \
                 {MIN_READ_SCALING}x gate — the read plane has re-serialized \
                 (pool mutex, stats line, or read-lock word)"
            );
            ExitCode::FAILURE
        }
        _ => ExitCode::SUCCESS,
    }
}
