//! CI perf-sanity gate: a quick k-sweep on a small index that fails (exit
//! code 1) if queries/sec drops by more than 4× between adjacent k steps.
//!
//! This is a cliff detector, not a benchmark. The incremental-escalation
//! work (persistent descent frontier + bulk pulls, DESIGN.md §6) makes
//! query cost near-linear in k: the measured worst adjacent-step drop is
//! ~2× (at a k doubling, cost at most doubles). A regression that
//! reintroduces per-round re-descent shows up as a super-linear step —
//! 4×+ between neighbours — long before it reaches the old cliff's 16×.
//! The 4× threshold leaves ~2× of headroom for shared-runner noise, and
//! each step takes the best of three timed repeats so one scheduling
//! stall cannot fake a cliff.
//!
//! The full sweep (bigger n, JSON export) lives in the `query_scaling`
//! bench; this binary trades coverage for a sub-second runtime so it can
//! gate every CI push.

use std::process::ExitCode;
use std::time::Instant;

use topk_bench::{build_index, small_machine, uniform_points};
use topk_core::{RankedIndex, SmallKEngine};
use workload::{Query, QueryGen};

const REPEATS: usize = 3;
const MIN_WINDOW_MS: u128 = 60;
const MAX_ADJACENT_DROP: f64 = 4.0;

/// Best-of-`REPEATS` queries/sec, each repeat a ≥ `MIN_WINDOW_MS` timed
/// loop over the whole query list (warm-up pass first).
fn queries_per_sec(index: &dyn RankedIndex, queries: &[Query]) -> f64 {
    let run = || {
        for q in queries {
            std::hint::black_box(index.query(q.x1, q.x2, q.k).unwrap());
        }
    };
    run();
    let mut best = 0f64;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let mut passes = 0usize;
        while start.elapsed().as_millis() < MIN_WINDOW_MS {
            run();
            passes += 1;
        }
        let qps = (passes * queries.len()) as f64 / start.elapsed().as_secs_f64();
        best = best.max(qps);
    }
    best
}

fn main() -> ExitCode {
    // Same machine and crossover as the query_scaling k sweep, smaller n
    // for speed. Selectivity 0.25 puts ~4096 points in a typical window,
    // so the k = 2048 step still does real deep-pull work.
    let n = 1usize << 14;
    let pts = uniform_points(11, n);
    let index = build_index(small_machine(), SmallKEngine::Polylog, 128, &pts);

    println!("perf_sanity — k sweep at n = {n}, 25% selectivity");
    println!(
        "{:>8} {:>14} {:>12} {:>10}",
        "k", "queries/sec", "us/query", "step"
    );
    let mut prev: Option<(usize, f64)> = None;
    let mut worst: Option<(usize, usize, f64)> = None;
    for k in (0..=11).map(|e| 1usize << e) {
        let queries = QueryGen::new(0.25, k, 5).generate(&pts, 8);
        let qps = queries_per_sec(&index, &queries);
        let step = prev.map(|(_, p)| p / qps);
        println!(
            "{k:>8} {qps:>14.0} {:>12.1} {:>10}",
            1e6 / qps,
            step.map_or("-".into(), |s| format!("{s:.2}x")),
        );
        if let (Some((pk, _)), Some(s)) = (prev, step) {
            if worst.is_none_or(|(_, _, w)| s > w) {
                worst = Some((pk, k, s));
            }
        }
        prev = Some((k, qps));
    }

    match worst {
        Some((pk, k, s)) if s > MAX_ADJACENT_DROP => {
            eprintln!(
                "perf_sanity FAIL: throughput dropped {s:.2}x from k = {pk} to k = {k} \
                 (gate: {MAX_ADJACENT_DROP}x) — a k-cliff is back in the query hot path"
            );
            ExitCode::FAILURE
        }
        _ => {
            let (pk, k, s) = worst.expect("sweep has at least two steps");
            println!("perf_sanity OK: worst adjacent drop {s:.2}x (k = {pk} -> {k}), gate {MAX_ADJACENT_DROP}x");
            ExitCode::SUCCESS
        }
    }
}
