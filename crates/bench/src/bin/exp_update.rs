//! Experiments E3 (headline) and E4: amortized update I/Os of the paper's
//! structure vs the Sheng–Tao-style baseline, as n and the block size grow.

use emsim::EmConfig;
use topk_bench::{avg_insert_ios, build_index, markdown_table, uniform_points};
use topk_core::SmallKEngine;

fn main() {
    println!("# E3: amortized insert I/Os vs n (B = 512 words)\n");
    let em = EmConfig::new(512, 2 * 1024 * 1024);
    let mut rows = Vec::new();
    for exp in [13u32, 15, 17, 19] {
        let n = 1usize << exp;
        // One distinct point set split into preload + collision-free inserts
        // (the fallible API rejects duplicate coordinates).
        let all = uniform_points(2, n + 2000);
        let (preload, batch) = all.split_at(n);
        let mut cols = vec![format!("2^{exp}")];
        for engine in [SmallKEngine::Polylog, SmallKEngine::St12] {
            let index = build_index(em, engine, 256, preload);
            let device = index.device().clone();
            let ios = avg_insert_ios(&device, &index, batch);
            cols.push(format!("{:.2}", ios));
        }
        let lgb = emsim::log_b(512 / 2, n);
        cols.push(format!("{:.2} / {:.2}", lgb, lgb * lgb));
        rows.push(cols);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "this paper (polylog) I/Os",
                "ST12 baseline I/Os",
                "log_B n / log_B^2 n (reference)"
            ],
            &rows
        )
    );

    println!("\n# E4: amortized insert I/Os vs block size (n = 2^16)\n");
    let n = 1usize << 16;
    let all = uniform_points(3, n + 1500);
    let (preload, batch) = all.split_at(n);
    let mut rows = Vec::new();
    for block in [128usize, 256, 512, 1024, 2048] {
        let em = EmConfig::new(block, block * 4096);
        let mut cols = vec![block.to_string()];
        for engine in [SmallKEngine::Polylog, SmallKEngine::St12] {
            let index = build_index(em, engine, 256, preload);
            let device = index.device().clone();
            cols.push(format!("{:.2}", avg_insert_ios(&device, &index, batch)));
        }
        rows.push(cols);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "B (words)",
                "this paper (polylog) I/Os",
                "ST12 baseline I/Os"
            ],
            &rows
        )
    );
}
