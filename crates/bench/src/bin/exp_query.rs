//! Experiments E1 and E2: query I/O cost vs n (fixed k) and vs k (fixed n),
//! for the combined index, the naive scan baseline and the RAM-model PST.
//! Prints the markdown tables recorded in EXPERIMENTS.md.
//!
//! The device-measured engines are driven through [`RankedIndex`], so the
//! measurement loop is written once; the RAM PST is priced separately in
//! node accesses (its cost model, see `baselines`).

use baselines::{NaiveTopK, RamPst};
use emsim::Device;
use topk_bench::{avg_query_ios, build_index, default_machine, markdown_table, uniform_points};
use topk_core::{RankedIndex, SmallKEngine};
use workload::QueryGen;

fn main() {
    let em = default_machine();
    println!("# E1: query I/Os vs n (k = 10, selectivity 10%)\n");
    let mut rows = Vec::new();
    for exp in [14u32, 16, 18, 20] {
        let n = 1usize << exp;
        let pts = uniform_points(1, n);
        let queries = QueryGen::new(0.1, 10, 2).generate(&pts, 10);

        let index = build_index(em, SmallKEngine::Polylog, 256, &pts);
        let index_device = index.device().clone();
        let naive_dev = Device::new(em);
        let naive = NaiveTopK::new(&naive_dev, "naive");
        naive.bulk_build(&pts).expect("distinct points");

        // The same generic measurement for every device-priced engine.
        let measured: Vec<f64> = [
            (&index_device, &index as &dyn RankedIndex),
            (&naive_dev, &naive as &dyn RankedIndex),
        ]
        .into_iter()
        .map(|(device, engine)| avg_query_ios(device, engine, &queries))
        .collect();

        let ram = RamPst::new(&naive_dev);
        ram.rebuild(&pts);
        let mut ram_total = 0;
        for q in &queries {
            ram.query(q.x1, q.x2, q.k).expect("well-formed");
            ram_total += ram.last_visited();
        }
        rows.push(vec![
            format!("2^{exp}"),
            format!("{:.1}", measured[0]),
            format!("{:.1}", measured[1]),
            format!("{:.1}", ram_total as f64 / queries.len() as f64),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "TopKIndex I/Os",
                "naive scan I/Os",
                "RAM PST node accesses"
            ],
            &rows
        )
    );

    println!("\n# E2: query I/Os vs k (n = 2^18, selectivity 25%)\n");
    let n = 1usize << 18;
    let pts = uniform_points(5, n);
    let index = build_index(em, SmallKEngine::Polylog, 256, &pts);
    let device = index.device().clone();
    let mut rows = Vec::new();
    for k in [1usize, 8, 64, 256, 1024, 8192, 32768] {
        let queries = QueryGen::new(0.25, k, 7).generate(&pts, 6);
        let ios = avg_query_ios(&device, &index, &queries);
        let regime = if k >= 256 {
            "large-k (pilot, §2)"
        } else {
            "small-k (§3.3)"
        };
        rows.push(vec![
            k.to_string(),
            format!("{:.1}", ios),
            format!("{:.2}", ios / (k as f64 / 256.0).max(1.0)),
            regime.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["k", "I/Os", "I/Os per k/B", "regime"], &rows)
    );
}
