//! Experiments E5 (space), E6 (mixed-workload throughput) and E7 (ablations:
//! approximation quality and reduction fallback rate).

use emsim::Device;
use topk_bench::{build_index, default_machine, markdown_table, uniform_points};
use topk_core::{Oracle, SmallKEngine};
use workload::{Op, QueryGen, TraceGen};

fn main() {
    let em = default_machine();

    println!("# E5: space (blocks) vs n\n");
    let mut rows = Vec::new();
    for exp in [14u32, 16, 18] {
        let n = 1usize << exp;
        let pts = uniform_points(4, n);
        let index = build_index(em, SmallKEngine::Polylog, 256, &pts);
        let n_over_b = n as f64 / (em.block_words as f64 / 2.0);
        rows.push(vec![
            format!("2^{exp}"),
            index.space_blocks().to_string(),
            format!("{:.0}", n_over_b),
            format!("{:.1}", index.space_blocks() as f64 / n_over_b),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["n", "space (blocks)", "n/B", "blocks per n/B"], &rows)
    );

    println!("\n# E6: mixed workloads, I/Os per operation (n = 2^16)\n");
    let n = 1usize << 16;
    let pts = uniform_points(6, n);
    let mut rows = Vec::new();
    for (label, ins, del) in [
        ("90% query", 0.05, 0.05),
        ("50% query", 0.25, 0.25),
        ("10% query", 0.45, 0.45),
    ] {
        let index = build_index(em, SmallKEngine::Polylog, 256, &pts);
        let trace = TraceGen::new(ins, del, 10, 0.1, 17).generate(&pts, 4000);
        let device = index.device().clone();
        let before = device.snapshot();
        for op in &trace {
            match op {
                Op::Insert(p) => index.insert(*p).expect("collision-free trace"),
                Op::Delete(p) => {
                    index.delete(*p).expect("consistent index");
                }
                Op::Query(q) => {
                    index.query(q.x1, q.x2, q.k).expect("well-formed query");
                }
            }
        }
        let d = device.since(&before);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", d.total() as f64 / trace.len() as f64),
        ]);
    }
    println!("{}", markdown_table(&["mix", "I/Os per op"], &rows));

    println!("\n# E7: approximation quality and reduction fallback rate (n = 2^16, k = 16)\n");
    let pts = uniform_points(8, n);
    let index = build_index(em, SmallKEngine::Polylog, 256, &pts);
    let oracle = Oracle::from_points(&pts);
    let queries = QueryGen::new(0.2, 16, 23).generate(&pts, 200);
    let device: Device = index.device().clone();
    let mut reported_over_k = Vec::new();
    let mut mismatches = 0;
    for q in &queries {
        let got = index.query(q.x1, q.x2, q.k).expect("well-formed query");
        if got != oracle.query(q.x1, q.x2, q.k) {
            mismatches += 1;
        }
        // Over-report factor: how many points the 3-sided pass returned
        // relative to k (proxy: count of range points above the k-th score).
        if let Some(kth) = got.last() {
            let over = oracle
                .points()
                .iter()
                .filter(|p| p.x >= q.x1 && p.x <= q.x2 && p.score >= kth.score)
                .count();
            reported_over_k.push(over as f64 / q.k as f64);
        }
    }
    let avg_over = reported_over_k.iter().sum::<f64>() / reported_over_k.len().max(1) as f64;
    println!(
        "{}",
        markdown_table(
            &[
                "queries",
                "answer mismatches (must be 0)",
                "avg reported/k",
                "device stats"
            ],
            &[vec![
                queries.len().to_string(),
                mismatches.to_string(),
                format!("{:.2}", avg_over),
                format!("{}", device.stats()),
            ]]
        )
    );
}
