//! A classic external priority search tree for 3-sided range reporting:
//! queries `[x1, x2] × [τ, ∞)`.
//!
//! Organization (Arge–Samoladas–Vitter style, adapted to the simulator):
//!
//! * a weight-balanced base tree over the x-coordinates (fan-out `Θ(B)`);
//! * every node `v` owns a *cache page* holding the highest-scoring points of
//!   `v`'s subtree that are **not** stored at an ancestor (leaf pages hold all
//!   remaining points of the leaf), plus the count of points stored strictly
//!   below `v` and, for internal nodes, a per-child summary
//!   `(cache length, min score, max score, below count)`;
//! * invariant: every point cached at `v` has a score at least as large as
//!   every point stored strictly below `v`.
//!
//! A query walks the two boundary paths and descends into a fully covered
//! child only when the parent's summary shows the child may still hold a
//! point above the threshold; every such descent either reports the child's
//! full cache (`Θ(B)` points) or reports every remaining matching point of
//! that subtree, so the cost is `O(log_B n + t/B)` I/Os except for the
//! "partially useful child" case discussed in DESIGN.md §3 (at most one extra
//! I/O per reported block of points, measured in experiment E7).
//!
//! Updates cost `O(log_B n)` amortized: insertions may push one evicted point
//! per level downwards; deletions remove the point where it lives, pull
//! replacements up when a cache gets thin, and trigger a global rebuild after
//! `n/2` weak deletions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use emsim::{BlockFile, Device, Page, PageId};
use wbbtree::{NodeId, WbbChild, WbbConfig, WbbTree};

use crate::drain::{Frontier, Step};
use crate::point::Point;

/// Parameters of a [`ThreeSidedPst`], derived from the block size by
/// [`ThreeSidedConfig::for_device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreeSidedConfig {
    /// Base-tree branching parameter (`Θ(B)` in the paper; bounded so a node
    /// and its child summaries fit in one block).
    pub branching: usize,
    /// Base-tree leaf target (keys per leaf).
    pub leaf_target: usize,
    /// Points per internal cache page.
    pub cache_cap: usize,
}

impl ThreeSidedConfig {
    /// Derive a configuration from the device's block size.
    pub fn for_device(device: &Device) -> Self {
        let b = device.block_words();
        let branching = (b / 64).clamp(2, 32);
        let summary_words = 5 * 4 * branching; // max_children × words per summary
        let cache_cap = ((b.saturating_sub(8 + summary_words)) / Point::WORDS).max(8);
        let leaf_target = ((b.saturating_sub(8)) / (2 * Point::WORDS)).max(4);
        Self {
            branching,
            leaf_target,
            cache_cap,
        }
    }
}

/// Per-child summary stored in the parent's cache page.
#[derive(Debug, Clone, Copy)]
struct ChildSummary {
    child: NodeId,
    cache_len: u32,
    below: u64,
    max_score: u64,
    min_score: u64,
}

/// The page owned by each base-tree node.
#[derive(Debug, Clone, Default)]
struct CachePage {
    /// Points stored at this node (unordered).
    pts: Vec<Point>,
    /// Number of points stored strictly below this node.
    below: u64,
    /// One summary per child (internal nodes only).
    summaries: Vec<ChildSummary>,
}

impl Page for CachePage {
    fn words(&self) -> usize {
        4 + self.pts.len() * Point::WORDS + self.summaries.len() * 5
    }
}

impl CachePage {
    fn min_score(&self) -> Option<u64> {
        self.pts.iter().map(|p| p.score).min()
    }
    fn max_score(&self) -> Option<u64> {
        self.pts.iter().map(|p| p.score).max()
    }
}

/// The 3-sided external priority search tree. See the module docs.
pub struct ThreeSidedPst {
    config: ThreeSidedConfig,
    base: WbbTree<u64>,
    pages: BlockFile<CachePage>,
    /// Directory mapping a base node to its cache page. Conceptually this
    /// pointer lives inside the base-tree node itself; it is kept here because
    /// the base tree is key-generic.
    map: RwLock<HashMap<NodeId, PageId>>,
    len: AtomicU64,
    deletes_since_rebuild: AtomicU64,
}

impl ThreeSidedPst {
    /// Create an empty structure.
    pub fn new(device: &Device, name: &str) -> Self {
        let config = ThreeSidedConfig::for_device(device);
        Self::with_config(device, name, config)
    }

    /// Create an empty structure with explicit parameters.
    pub fn with_config(device: &Device, name: &str, config: ThreeSidedConfig) -> Self {
        let base = WbbTree::new(
            device,
            &format!("{name}.base"),
            WbbConfig::new(config.branching, config.leaf_target, 1),
        );
        let pages = device.open_file::<CachePage>(&format!("{name}.caches"));
        let s = Self {
            config,
            base,
            pages,
            map: RwLock::new(HashMap::new()),
            len: AtomicU64::new(0),
            deletes_since_rebuild: AtomicU64::new(0),
        };
        s.ensure_page(s.base.root());
        s
    }

    /// Number of stored points.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Space in blocks (base tree plus cache pages).
    pub fn space_blocks(&self) -> usize {
        self.base.space_blocks() + self.pages.live_pages()
    }

    /// The configuration in use.
    pub fn config(&self) -> ThreeSidedConfig {
        self.config
    }

    // ----- page plumbing -----

    fn page_of(&self, node: NodeId) -> PageId {
        *self
            .map
            .read()
            .unwrap()
            .get(&node)
            // audit: allow(panic_path, reason = "fail-fast on a corrupted node-page map; the node id in the message is the diagnostic")
            .unwrap_or_else(|| panic!("no cache page for base node {node:?}"))
    }

    fn ensure_page(&self, node: NodeId) -> PageId {
        emsim::dir_get_or_insert(&self.map, node, || self.pages.alloc(CachePage::default()))
    }

    #[allow(dead_code)] // kept for symmetry with ensure_page; used by future compaction
    fn drop_page(&self, node: NodeId) {
        if let Some(p) = self.map.write().unwrap().remove(&node) {
            self.pages.free(p);
        }
    }

    /// Recompute the parent-side summary of `child` inside `parent`'s page.
    fn refresh_summary(&self, parent: NodeId, child: NodeId) {
        let child_page = self.page_of(child);
        let (len, below, max_score, min_score) = self.pages.with(child_page, |p| {
            (
                p.pts.len() as u32,
                p.below,
                p.max_score().unwrap_or(0),
                p.min_score().unwrap_or(0),
            )
        });
        let parent_page = self.page_of(parent);
        self.pages.with_mut(parent_page, |p| {
            if let Some(s) = p.summaries.iter_mut().find(|s| s.child == child) {
                s.cache_len = len;
                s.below = below;
                s.max_score = max_score;
                s.min_score = min_score;
            } else {
                p.summaries.push(ChildSummary {
                    child,
                    cache_len: len,
                    below,
                    max_score,
                    min_score,
                });
            }
        });
    }

    /// Rebuild every child summary of `node` from its children's pages.
    fn rebuild_summaries(&self, node: NodeId) {
        let children = self.base.children(node);
        let page = self.page_of(node);
        self.pages.with_mut(page, |p| p.summaries.clear());
        for c in children {
            self.ensure_page(c.id);
            self.refresh_summary(node, c.id);
        }
    }

    fn points_in_subtree(&self, node: NodeId, out: &mut Vec<Point>) {
        let page = self.page_of(node);
        self.pages.with(page, |p| out.extend(p.pts.iter().copied()));
        for c in self.base.children(node) {
            self.points_in_subtree(c.id, out);
        }
    }

    fn count_below(&self, node: NodeId) -> u64 {
        let mut total = 0u64;
        for c in self.base.children(node) {
            let page = self.page_of(c.id);
            total += self.pages.with(page, |p| p.pts.len() as u64);
            total += self.count_below(c.id);
        }
        total
    }

    // ----- construction -----

    /// Rebuild the whole structure from `points` (arbitrary order, distinct
    /// coordinates and scores). Cost `O(n/B + #nodes)` I/Os.
    pub fn rebuild_from_points(&self, points: &[Point]) {
        // Free existing cache pages.
        let old: Vec<PageId> = self.map.read().unwrap().values().copied().collect();
        for p in old {
            self.pages.free(p);
        }
        self.map.write().unwrap().clear();

        let mut xs: Vec<u64> = points.iter().map(|p| p.x).collect();
        xs.sort_unstable();
        xs.dedup();
        self.base.bulk_load(&xs);
        self.len.store(points.len() as u64, Ordering::Relaxed);
        self.deletes_since_rebuild.store(0, Ordering::Relaxed);

        let mut sorted: Vec<Point> = points.to_vec();
        sorted.sort_unstable_by_key(|p| std::cmp::Reverse(p.score));
        self.build_rec(self.base.root(), sorted);
    }

    /// Distribute `pts` (sorted by descending score) over the subtree of
    /// `node`: the top `cache_cap` stay here, the rest are partitioned among
    /// the children.
    fn build_rec(&self, node: NodeId, pts: Vec<Point>) {
        let page = self.ensure_page(node);
        let children = self.base.children(node);
        if children.is_empty() {
            self.pages.with_mut(page, |p| {
                p.pts = pts;
                p.below = 0;
                p.summaries.clear();
            });
            return;
        }
        let keep = pts.len().min(self.config.cache_cap);
        let (here, rest) = pts.split_at(keep);
        self.pages.with_mut(page, |p| {
            p.pts = here.to_vec();
            p.below = rest.len() as u64;
            p.summaries.clear();
        });
        // Partition the remainder by child slab.
        let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); children.len()];
        for &pt in rest {
            let idx = children
                .partition_point(|c| c.max_key < pt.x)
                .min(children.len() - 1);
            buckets[idx].push(pt);
        }
        for (c, bucket) in children.iter().zip(buckets) {
            self.build_rec(c.id, bucket);
        }
        self.rebuild_summaries(node);
    }

    // ----- updates -----

    /// Insert a point (distinct x and score). `O(log_B n)` amortized I/Os.
    pub fn insert(&self, pt: Point) {
        let report = self.base.insert(pt.x);
        debug_assert!(report.inserted, "coordinates must be distinct");
        self.handle_splits(&report);

        // Cache descent.
        let mut path: Vec<NodeId> = Vec::new();
        let mut cur = self.base.root();
        let mut carry = pt;
        loop {
            path.push(cur);
            let page = self.ensure_page(cur);
            let children = self.base.children(cur);
            if children.is_empty() {
                self.pages.with_mut(page, |p| p.pts.push(carry));
                break;
            }
            let (below, min_score, cache_len) = self
                .pages
                .with(page, |p| (p.below, p.min_score(), p.pts.len()));
            // The carry belongs here if it beats the cache minimum, or if
            // nothing is stored below and the cache still has room. (A full
            // cache with `below == 0` must NOT capture a carry that scores
            // under its minimum: swapping would send the evicted — larger —
            // point below the smaller one and break the heap order.)
            let insert_here = (below == 0 && cache_len < self.config.cache_cap)
                || (cache_len > 0 && carry.score > min_score.unwrap_or(0));
            if insert_here && cache_len < self.config.cache_cap {
                self.pages.with_mut(page, |p| p.pts.push(carry));
                break;
            }
            if insert_here {
                // Swap with the cache minimum and keep descending with it.
                let evicted = self.pages.with_mut(page, |p| {
                    let (idx, _) = p
                        .pts
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, q)| q.score)
                        .expect("cache is full, hence non-empty");
                    let evicted = p.pts.swap_remove(idx);
                    p.pts.push(carry);
                    p.below += 1;
                    evicted
                });
                carry = evicted;
            } else {
                self.pages.with_mut(page, |p| p.below += 1);
            }
            let idx = children
                .partition_point(|c| c.max_key < carry.x)
                .min(children.len() - 1);
            cur = children[idx].id;
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        self.refresh_path_summaries(&path);
    }

    /// Delete a point (exact x and score). Returns `false` if absent.
    /// `O(log_B n)` amortized I/Os.
    pub fn delete(&self, pt: Point) -> bool {
        // Locate the holder along the x-path.
        let mut path: Vec<NodeId> = Vec::new();
        let mut cur = self.base.root();
        let holder = loop {
            path.push(cur);
            let page = self.page_of(cur);
            let found = self.pages.with(page, |p| {
                p.pts.iter().any(|q| q.x == pt.x && q.score == pt.score)
            });
            if found {
                break Some(cur);
            }
            let children = self.base.children(cur);
            if children.is_empty() {
                break None;
            }
            let idx = children
                .partition_point(|c| c.max_key < pt.x)
                .min(children.len() - 1);
            cur = children[idx].id;
        };
        let Some(holder) = holder else {
            return false;
        };

        self.base.delete(pt.x);
        let holder_page = self.page_of(holder);
        self.pages.with_mut(holder_page, |p| {
            p.pts.retain(|q| !(q.x == pt.x && q.score == pt.score));
        });
        // The point was below every strict ancestor on the path.
        for &n in path.iter().take_while(|&&n| n != holder) {
            let page = self.page_of(n);
            self.pages
                .with_mut(page, |p| p.below = p.below.saturating_sub(1));
        }
        // Pull replacements up if the holder's cache got thin.
        let (len_now, below_now) = self.pages.with(holder_page, |p| (p.pts.len(), p.below));
        if !self.base.is_leaf(holder) && below_now > 0 && len_now < self.config.cache_cap / 2 {
            self.refill(holder);
        }
        self.len.fetch_sub(1, Ordering::Relaxed);
        self.refresh_path_summaries(&path);

        // Periodic global rebuild clears the damage of weak deletions.
        self.deletes_since_rebuild.fetch_add(1, Ordering::Relaxed);
        if self.deletes_since_rebuild.load(Ordering::Relaxed) > self.len() / 2 + 16 {
            let mut pts = Vec::with_capacity(self.len() as usize);
            self.points_in_subtree(self.base.root(), &mut pts);
            self.rebuild_from_points(&pts);
        }
        true
    }

    fn refresh_path_summaries(&self, path: &[NodeId]) {
        for w in path.windows(2).rev() {
            self.refresh_summary(w[0], w[1]);
        }
    }

    /// Pull the best points from below into `node`'s cache until it is half
    /// full or the subtree below is exhausted (the pull-up of the paper).
    fn refill(&self, node: NodeId) {
        let page = self.page_of(node);
        loop {
            let (len, below) = self.pages.with(page, |p| (p.pts.len(), p.below));
            if below == 0 || len >= self.config.cache_cap / 2 {
                break;
            }
            // Pick the child whose cache currently holds the best point.
            let children = self.base.children(node);
            let mut best: Option<(NodeId, u64, bool)> = None;
            for c in &children {
                let cp = self.page_of(c.id);
                let (clen, cbelow, _cmax) = self
                    .pages
                    .with(cp, |p| (p.pts.len(), p.below, p.max_score().unwrap_or(0)));
                if clen == 0 && cbelow > 0 && !self.base.is_leaf(c.id) {
                    // The child's own cache is empty but it has points below:
                    // refill it first so we can pull from it — and refresh
                    // our summary of it, which the recursive refill changed
                    // whether or not we end up pulling from this child.
                    self.refill(c.id);
                    self.refresh_summary(node, c.id);
                }
                let (clen, cmax) = self
                    .pages
                    .with(cp, |p| (p.pts.len(), p.max_score().unwrap_or(0)));
                if clen > 0 {
                    let better = best.map(|(_, s, _)| cmax > s).unwrap_or(true);
                    if better {
                        best = Some((c.id, cmax, true));
                    }
                }
            }
            let Some((child, _, _)) = best else { break };
            let child_page = self.page_of(child);
            let pulled = self.pages.with_mut(child_page, |p| {
                let (idx, _) = p
                    .pts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, q)| q.score)
                    .expect("child cache is non-empty");
                p.pts.swap_remove(idx)
            });
            self.pages.with_mut(page, |p| {
                p.pts.push(pulled);
                p.below -= 1;
            });
            self.refresh_summary(node, child);
        }
    }

    /// React to base-tree splits: split the affected cache pages by
    /// coordinate, recount the below counters and rebuild summaries.
    fn handle_splits(&self, report: &wbbtree::InsertReport) {
        if report.splits.is_empty() {
            return;
        }
        for ev in &report.splits {
            let old_page = self.ensure_page(ev.node);
            let sibling_page = self.ensure_page(ev.new_sibling);
            let boundary = self.base.max_key(ev.node).expect("split node is non-empty");
            // Points with x beyond the boundary move to the new sibling.
            let moved: Vec<Point> = self.pages.with_mut(old_page, |p| {
                let moved: Vec<Point> = p.pts.iter().copied().filter(|q| q.x > boundary).collect();
                p.pts.retain(|q| q.x <= boundary);
                moved
            });
            self.pages.with_mut(sibling_page, |p| p.pts.extend(moved));
            // Recount below for both halves (paid for by the Ω(weight) updates
            // between splits of the same region).
            let below_old = self.count_below(ev.node);
            let below_new = self.count_below(ev.new_sibling);
            self.pages.with_mut(old_page, |p| p.below = below_old);
            self.pages.with_mut(sibling_page, |p| p.below = below_new);
            self.rebuild_summaries(ev.node);
            self.rebuild_summaries(ev.new_sibling);
            self.ensure_page(ev.parent);
            self.rebuild_summaries(ev.parent);
        }
        if let Some(new_root) = report.new_root {
            let page = self.ensure_page(new_root);
            let below = self.count_below(new_root);
            self.pages.with_mut(page, |p| p.below = below);
            self.rebuild_summaries(new_root);
            // Saturate the new root so queries keep finding the global top
            // points near the root.
            self.refill(new_root);
            self.rebuild_summaries(new_root);
        }
    }

    // ----- queries -----

    /// Report every point with `x ∈ [x1, x2]` and `score ≥ tau`.
    pub fn query(&self, x1: u64, x2: u64, tau: u64) -> Vec<Point> {
        self.query_band(x1, x2, tau, u64::MAX)
    }

    /// Report every point with `x ∈ [x1, x2]` and `tau ≤ score < hi` (with
    /// `hi == u64::MAX` meaning no ceiling, so `u64::MAX` scores are still
    /// reported by a plain [`ThreeSidedPst::query`]). The escalation rounds
    /// of the streaming query path use the ceiling to fetch only the band of
    /// scores below the previous round's threshold instead of re-reporting
    /// the whole prefix every round.
    pub fn query_band(&self, x1: u64, x2: u64, tau: u64, hi: u64) -> Vec<Point> {
        let mut out = Vec::new();
        self.query_band_into(x1, x2, tau, hi, &mut out);
        out
    }

    /// [`ThreeSidedPst::query_band`] into a caller-owned buffer (appended,
    /// unsorted), so a paging consumer can reuse one allocation per round.
    pub fn query_band_into(&self, x1: u64, x2: u64, tau: u64, hi: u64, out: &mut Vec<Point>) {
        if x1 > x2 || self.is_empty() || (hi != u64::MAX && tau >= hi) {
            return;
        }
        self.query_rec(self.base.root(), x1, x2, tau, hi, true, true, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn query_rec(
        &self,
        node: NodeId,
        x1: u64,
        x2: u64,
        tau: u64,
        hi: u64,
        lo_cut: bool,
        hi_cut: bool,
        out: &mut Vec<Point>,
    ) {
        let page = self.page_of(node);
        self.pages.with(page, |p| {
            out.extend(
                p.pts
                    .iter()
                    .filter(|q| {
                        q.x >= x1 && q.x <= x2 && q.score >= tau && (hi == u64::MAX || q.score < hi)
                    })
                    .copied(),
            )
        });
        let children = self.base.children(node);
        if children.is_empty() {
            return;
        }
        let il = if lo_cut {
            children.partition_point(|c| c.max_key < x1)
        } else {
            0
        };
        if il == children.len() {
            return;
        }
        let ih = if hi_cut {
            children
                .partition_point(|c| c.max_key < x2)
                .min(children.len() - 1)
        } else {
            children.len() - 1
        };
        if il > ih {
            return;
        }
        let summaries: Vec<ChildSummary> = self.pages.with(page, |p| p.summaries.clone());
        for (i, c) in children.iter().enumerate().take(ih + 1).skip(il) {
            let boundary_lo = lo_cut && i == il;
            let boundary_hi = hi_cut && i == ih;
            if boundary_lo || boundary_hi {
                self.query_rec(c.id, x1, x2, tau, hi, boundary_lo, boundary_hi, out);
                continue;
            }
            let summ = summaries.iter().find(|s| s.child == c.id);
            let visit = match summ {
                Some(s) => {
                    if s.cache_len == 0 {
                        s.below > 0
                    } else {
                        s.max_score >= tau
                    }
                }
                // No summary (stale directory): be safe and visit.
                None => true,
            };
            if visit {
                self.query_rec(c.id, x1, x2, tau, hi, false, false, out);
            }
        }
    }

    /// Number of stored points with `x ∈ [x1, x2]`, in `O(log_B n)` I/Os.
    pub fn count_in_range(&self, x1: u64, x2: u64) -> u64 {
        if x1 > x2 || self.is_empty() {
            return 0;
        }
        let mut total = 0u64;
        for piece in self.base.canonical_decompose(x1, x2) {
            match piece {
                wbbtree::CanonicalPiece::Leaf(leaf) => {
                    total += self
                        .base
                        .leaf_keys(leaf)
                        .into_iter()
                        .filter(|&k| k >= x1 && k <= x2)
                        .count() as u64;
                }
                wbbtree::CanonicalPiece::MultiSlab {
                    node,
                    child_lo,
                    child_hi,
                } => {
                    let children: Vec<WbbChild<u64>> = self.base.children(node);
                    total += children[child_lo..=child_hi]
                        .iter()
                        .map(|c| c.weight)
                        .sum::<u64>();
                }
            }
        }
        total
    }

    /// All stored points (testing / rebuild support).
    pub fn all_points(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.len() as usize);
        self.points_in_subtree(self.base.root(), &mut out);
        out
    }

    // ----- resumable drain -----

    /// Open a resumable best-first drain over `x ∈ [x1, x2]`: repeated
    /// [`ThreeSidedDrain::pull`] calls emit the range's points in descending
    /// score order, each pull resuming from the saved frontier instead of
    /// re-descending from the root. Construction costs no I/Os.
    pub fn drain(&self, x1: u64, x2: u64) -> ThreeSidedDrain {
        self.drain_window(x1, x2, 0, u64::MAX)
    }

    /// A drain restricted to the score window `lo ≤ score < hi` (with
    /// `hi == u64::MAX` meaning no ceiling). The cursor layer uses the
    /// ceiling to rebuild a frontier below its low-water mark after a write
    /// invalidated the saved one.
    pub fn drain_window(&self, x1: u64, x2: u64, lo: u64, hi: u64) -> ThreeSidedDrain {
        ThreeSidedDrain {
            x1,
            x2,
            lo,
            hi,
            frontier: Frontier::new(),
        }
    }

    /// Read `node`'s page once: its in-window points become one sorted run
    /// entry, its overlapping children become bounded node entries.
    fn drain_expand(&self, d: &mut ThreeSidedDrain, node: NodeId, inherited: u64) {
        let page = self.page_of(node);
        let children = self.base.children(node);
        self.pages.with(page, |p| {
            let survivors: Vec<Point> = p
                .pts
                .iter()
                .filter(|q| {
                    q.x >= d.x1
                        && q.x <= d.x2
                        && q.score >= d.lo
                        && (d.hi == u64::MAX || q.score < d.hi)
                })
                .copied()
                .collect();
            d.frontier.push_run(survivors);
            if children.is_empty() {
                return;
            }
            let il = children.partition_point(|c| c.max_key < d.x1);
            if il == children.len() {
                return;
            }
            let ih = children
                .partition_point(|c| c.max_key < d.x2)
                .min(children.len() - 1);
            if il > ih {
                return;
            }
            // Everything below this node scores at most our cache minimum
            // (or, if the cache is empty, at most the bound we were pushed
            // with) — the fallback bound for children whose summary cannot
            // pin a tighter one.
            let fallback = p
                .pts
                .iter()
                .map(|q| q.score)
                .min()
                .unwrap_or(inherited)
                .min(inherited);
            for c in &children[il..=ih] {
                let bound = match p.summaries.iter().find(|s| s.child == c.id) {
                    Some(s) if s.cache_len > 0 => s.max_score,
                    Some(s) if s.below > 0 => fallback,
                    Some(_) => continue, // empty subtree
                    // No summary (stale directory): be safe and visit.
                    None => fallback,
                };
                if bound >= d.lo {
                    d.frontier.push_node(bound, c.id);
                }
            }
        });
    }

    // ----- invariants -----

    /// Verify the structural invariants (test support): below counts, the
    /// order invariant between a cache and its subtree, and the summaries.
    pub fn check_invariants(&self) {
        let total = self.check_rec(self.base.root(), u64::MAX);
        assert_eq!(total, self.len(), "stored point count disagrees");
    }

    fn check_rec(&self, node: NodeId, ancestor_min: u64) -> u64 {
        let page = self.page_of(node);
        let (pts, below, summaries) = self
            .pages
            .with(page, |p| (p.pts.clone(), p.below, p.summaries.clone()));
        for p in &pts {
            assert!(
                p.score <= ancestor_min,
                "cache point {:?} exceeds an ancestor's minimum {ancestor_min}",
                p
            );
        }
        let my_min = pts.iter().map(|p| p.score).min().unwrap_or(ancestor_min);
        let children = self.base.children(node);
        let mut below_actual = 0;
        for c in &children {
            let cp = self.page_of(c.id);
            let (clen, cbelow, cmax, cmin) = self.pages.with(cp, |p| {
                (
                    p.pts.len() as u32,
                    p.below,
                    p.max_score().unwrap_or(0),
                    p.min_score().unwrap_or(0),
                )
            });
            if let Some(s) = summaries.iter().find(|s| s.child == c.id) {
                assert_eq!(s.cache_len, clen, "stale summary len");
                assert_eq!(s.below, cbelow, "stale summary below");
                assert_eq!(s.max_score, cmax, "stale summary max");
                assert_eq!(s.min_score, cmin, "stale summary min");
            } else {
                // audit: allow(panic_path, reason = "check_rec is the consistency checker; panicking on corruption is its contract")
                panic!("missing summary for child {:?}", c.id);
            }
            // The recursive call returns the child's full subtree point count
            // (its own cache included), which is exactly what lies below us.
            below_actual += self.check_rec(c.id, my_min);
        }
        assert_eq!(below, below_actual, "below counter is stale");
        pts.len() as u64 + below_actual
    }
}

/// A resumable best-first drain over a [`ThreeSidedPst`] range, created by
/// [`ThreeSidedPst::drain`]. The drain owns its whole descent state (no
/// borrows into the tree), so it can be suspended between pulls and resumed
/// arbitrarily later — **as long as the tree has not been mutated** in
/// between. After any insert, delete, or rebuild the saved frontier is
/// meaningless and the drain must be discarded; the index layers gate reuse
/// on a version stamp.
#[derive(Debug)]
pub struct ThreeSidedDrain {
    x1: u64,
    x2: u64,
    /// Inclusive score floor: points below it are never emitted and subtrees
    /// bounded below it are never entered.
    lo: u64,
    /// Exclusive score ceiling (`u64::MAX` = none): the resume low-water
    /// mark.
    hi: u64,
    frontier: Frontier<NodeId>,
}

impl ThreeSidedDrain {
    /// Emit up to `n` further points into `out`, in descending score order,
    /// resuming from the saved frontier. Returns how many were emitted; fewer
    /// than `n` means the drain is exhausted. `pst` must be the structure the
    /// drain was created on, unmutated since.
    pub fn pull(&mut self, pst: &ThreeSidedPst, n: usize, out: &mut Vec<Point>) -> usize {
        if !self.frontier.primed() {
            self.frontier.set_primed();
            if self.x1 <= self.x2 && !pst.is_empty() && (self.hi == u64::MAX || self.lo < self.hi) {
                self.frontier.push_node(u64::MAX, pst.base.root());
            }
        }
        let mut taken = 0;
        while taken < n {
            match self.frontier.step() {
                None => break,
                Some(Step::Point(p)) => {
                    out.push(p);
                    taken += 1;
                }
                Some(Step::Expand(id, bound)) => pst.drain_expand(self, id, bound),
            }
        }
        taken
    }

    /// Whether the drain has emitted everything in its range and window.
    pub fn is_exhausted(&self) -> bool {
        self.frontier.primed() && self.frontier.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::EmConfig;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    fn device() -> Device {
        Device::new(EmConfig::new(128, 64 * 128))
    }

    fn random_points(seed: u64, n: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        let mut scores: Vec<u64> = (0..n as u64).map(|i| i * 7 + 5).collect();
        xs.shuffle(&mut rng);
        scores.shuffle(&mut rng);
        xs.into_iter()
            .zip(scores)
            .map(|(x, score)| Point { x, score })
            .collect()
    }

    fn oracle_query(pts: &[Point], x1: u64, x2: u64, tau: u64) -> Vec<Point> {
        let mut v: Vec<Point> = pts
            .iter()
            .filter(|p| p.x >= x1 && p.x <= x2 && p.score >= tau)
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    fn sorted(mut v: Vec<Point>) -> Vec<Point> {
        v.sort_unstable();
        v
    }

    #[test]
    fn descending_scores_at_ascending_x_keep_heap_order() {
        // Regression: a node with `below == 0` and a full cache used to
        // capture a carry scoring under its cache minimum, swap-evicting the
        // larger minimum downwards and breaking the heap-order invariant.
        // Anti-correlated insertion order (ascending x, descending score)
        // hits that shape within a few hundred points.
        let dev = device();
        let pst = ThreeSidedPst::new(&dev, "pst");
        let mut pts = Vec::new();
        for i in 0..1200u64 {
            let p = Point {
                x: i * 3 + 1,
                score: 100_000 - i * 7,
            };
            pst.insert(p);
            pts.push(p);
            if i % 50 == 0 {
                pst.check_invariants();
            }
        }
        pst.check_invariants();
        assert_eq!(
            sorted(pst.query(10, 2_000, 96_000)),
            oracle_query(&pts, 10, 2_000, 96_000)
        );
    }

    #[test]
    fn insert_only_matches_oracle() {
        let dev = device();
        let pst = ThreeSidedPst::new(&dev, "pst");
        let pts = random_points(1, 1500);
        for (i, &p) in pts.iter().enumerate() {
            pst.insert(p);
            if i % 500 == 0 {
                pst.check_invariants();
            }
        }
        pst.check_invariants();
        assert_eq!(pst.len(), 1500);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let a = rng.gen_range(0..4500u64);
            let b = rng.gen_range(a..=4500u64);
            let tau = rng.gen_range(0..12000u64);
            let got = sorted(pst.query(a, b, tau));
            assert_eq!(
                got,
                oracle_query(&pts, a, b, tau),
                "range [{a},{b}] tau {tau}"
            );
        }
    }

    #[test]
    fn deletes_match_oracle_and_trigger_rebuild() {
        let dev = device();
        let pst = ThreeSidedPst::new(&dev, "pst");
        let pts = random_points(3, 800);
        for &p in &pts {
            pst.insert(p);
        }
        let mut rng = StdRng::seed_from_u64(4);
        let mut live: Vec<Point> = pts.clone();
        // Delete most points to force at least one global rebuild.
        for _ in 0..600 {
            let idx = rng.gen_range(0..live.len());
            let victim = live.swap_remove(idx);
            assert!(pst.delete(victim));
        }
        assert!(!pst.delete(Point {
            x: 999_999,
            score: 1
        }));
        assert_eq!(pst.len(), live.len() as u64);
        pst.check_invariants();
        for _ in 0..25 {
            let a = rng.gen_range(0..2400u64);
            let b = rng.gen_range(a..=2400u64);
            let tau = rng.gen_range(0..6000u64);
            let got = sorted(pst.query(a, b, tau));
            assert_eq!(got, oracle_query(&live, a, b, tau));
        }
    }

    #[test]
    fn bulk_rebuild_matches_oracle() {
        let dev = device();
        let pst = ThreeSidedPst::new(&dev, "pst");
        let pts = random_points(7, 2000);
        pst.rebuild_from_points(&pts);
        pst.check_invariants();
        assert_eq!(pst.len(), 2000);
        let got = sorted(pst.query(0, u64::MAX, 0));
        assert_eq!(got, sorted(pts.clone()));
        let got = sorted(pst.query(100, 2000, 9000));
        assert_eq!(got, oracle_query(&pts, 100, 2000, 9000));
        assert_eq!(pst.count_in_range(0, u64::MAX), 2000);
        assert_eq!(
            pst.count_in_range(100, 2000),
            pts.iter().filter(|p| p.x >= 100 && p.x <= 2000).count() as u64
        );
    }

    #[test]
    fn mixed_workload_matches_oracle() {
        let dev = device();
        let pst = ThreeSidedPst::new(&dev, "pst");
        let mut rng = StdRng::seed_from_u64(11);
        let mut live: Vec<Point> = Vec::new();
        let mut next = 1u64;
        for step in 0..3000 {
            if !live.is_empty() && rng.gen_bool(0.3) {
                let idx = rng.gen_range(0..live.len());
                let victim = live.swap_remove(idx);
                assert!(pst.delete(victim));
            } else {
                let p = Point {
                    x: next * 13 % 100_003,
                    score: next * 17,
                };
                next += 1;
                live.push(p);
                pst.insert(p);
            }
            if step % 700 == 0 {
                pst.check_invariants();
            }
        }
        pst.check_invariants();
        for _ in 0..30 {
            let a = rng.gen_range(0..100_003u64);
            let b = rng.gen_range(a..=100_003u64);
            let tau = rng.gen_range(0..next * 17);
            assert_eq!(sorted(pst.query(a, b, tau)), oracle_query(&live, a, b, tau));
        }
    }

    fn oracle_descending(pts: &[Point], x1: u64, x2: u64, lo: u64, hi: u64) -> Vec<Point> {
        let mut v: Vec<Point> = pts
            .iter()
            .filter(|p| p.x >= x1 && p.x <= x2 && p.score >= lo && (hi == u64::MAX || p.score < hi))
            .copied()
            .collect();
        v.sort_unstable_by_key(|p| std::cmp::Reverse(p.score));
        v
    }

    #[test]
    fn query_band_matches_oracle_window() {
        let dev = device();
        let pst = ThreeSidedPst::new(&dev, "pst");
        let pts = random_points(21, 1200);
        pst.rebuild_from_points(&pts);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..30 {
            let a = rng.gen_range(0..3600u64);
            let b = rng.gen_range(a..=3600u64);
            let tau = rng.gen_range(0..9000u64);
            let hi = rng.gen_range(tau..=9000u64);
            let got = sorted(pst.query_band(a, b, tau, hi));
            let mut expect = oracle_descending(&pts, a, b, tau, hi);
            expect.sort_unstable();
            assert_eq!(got, expect, "band [{a},{b}] × [{tau},{hi})");
        }
        // No ceiling reports everything above tau, u64::MAX scores included.
        assert_eq!(
            sorted(pst.query_band(0, u64::MAX, 0, u64::MAX)),
            sorted(pts.clone())
        );
    }

    #[test]
    fn drain_emits_descending_across_arbitrary_pull_sizes() {
        let dev = device();
        let pst = ThreeSidedPst::new(&dev, "pst");
        let pts = random_points(31, 1800);
        pst.rebuild_from_points(&pts);
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..12 {
            let a = rng.gen_range(0..5400u64);
            let b = rng.gen_range(a..=5400u64);
            let expect = oracle_descending(&pts, a, b, 0, u64::MAX);
            let mut drain = pst.drain(a, b);
            let mut got = Vec::new();
            loop {
                let chunk = rng.gen_range(1..40usize);
                if drain.pull(&pst, chunk, &mut got) < chunk {
                    break;
                }
            }
            assert!(drain.is_exhausted());
            assert_eq!(got, expect, "drain over [{a},{b}]");
        }
    }

    #[test]
    fn drain_window_resumes_below_a_mark() {
        let dev = device();
        let pst = ThreeSidedPst::new(&dev, "pst");
        let pts = random_points(41, 1000);
        pst.rebuild_from_points(&pts);
        let expect = oracle_descending(&pts, 100, 2500, 0, u64::MAX);
        // Take a prefix with one drain, then rebuild a fresh drain below the
        // last emitted score — the cursor's stamp-invalidated resume path.
        let mut first = pst.drain(100, 2500);
        let mut head = Vec::new();
        first.pull(&pst, 37, &mut head);
        assert_eq!(head.len(), 37.min(expect.len()));
        let mark = head.last().map(|p| p.score).unwrap_or(u64::MAX);
        let mut rest = Vec::new();
        pst.drain_window(100, 2500, 0, mark)
            .pull(&pst, usize::MAX, &mut rest);
        head.extend(rest);
        assert_eq!(head, expect);
    }

    #[test]
    fn drain_survives_interleaved_pulls_on_a_live_tree_between_rebuilds() {
        // A drain is only valid against an unmutated tree, but pulls on the
        // same tree state must not care how many pulls came before.
        let dev = device();
        let pst = ThreeSidedPst::new(&dev, "pst");
        let pts = random_points(51, 700);
        for &p in &pts {
            pst.insert(p);
        }
        let expect = oracle_descending(&pts, 0, u64::MAX, 0, u64::MAX);
        let mut drain = pst.drain(0, u64::MAX);
        let mut got = Vec::new();
        while drain.pull(&pst, 13, &mut got) == 13 {}
        assert_eq!(got, expect);
    }

    #[test]
    fn query_io_is_logarithmic_for_small_output() {
        let dev = Device::new(EmConfig::new(256, 8 * 256));
        let pst = ThreeSidedPst::new(&dev, "pst");
        let pts = random_points(5, 30_000);
        pst.rebuild_from_points(&pts);
        dev.drop_cache();
        // A threshold higher than every score returns nothing and should only
        // walk the two boundary paths.
        let (res, cost) = dev.measure(|| pst.query(10_000, 60_000, u64::MAX));
        assert!(res.is_empty());
        assert!(
            cost.reads <= 40,
            "empty-output query should touch O(log_B n) pages, read {}",
            cost.reads
        );
    }
}
