//! The point type shared by every structure in this reproduction.

use embtree::Entry;

/// A point of the top-k range reporting input: a key (coordinate) `x ∈ R` and
/// a distinct score. Both are `u64`s; the paper's standard assumption that all
/// scores are distinct (§1, footnote 1) is required by every structure built
/// on this type, and the public API of `topk-core` enforces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Point {
    /// The coordinate queried by ranges `[x1, x2]`.
    pub x: u64,
    /// The (distinct) score; top-k queries return the `k` highest.
    pub score: u64,
}

impl Point {
    /// Convenience constructor.
    pub fn new(x: u64, score: u64) -> Self {
        Self { x, score }
    }

    /// Number of machine words a point occupies on disk.
    pub const WORDS: usize = 2;
}

impl PartialOrd for Point {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Point {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Order by coordinate, then score, so points form a total order even
        // if two points share a coordinate.
        (self.x, self.score).cmp(&(other.x, other.score))
    }
}

/// Points can be stored directly in an [`embtree::BTree`] keyed by coordinate,
/// with the score available to range-maximum queries. This is what the naive
/// baseline and several leaf structures use.
impl Entry for Point {
    type Key = u64;
    const WORDS: usize = 2;
    const KEY_WORDS: usize = 1;

    fn key(&self) -> u64 {
        self.x
    }

    fn aux(&self) -> u64 {
        self.score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_x_then_score() {
        let a = Point::new(1, 50);
        let b = Point::new(2, 10);
        let c = Point::new(2, 20);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn entry_impl_exposes_key_and_aux() {
        let p = Point::new(7, 99);
        assert_eq!(p.key(), 7);
        assert_eq!(p.aux(), 99);
        assert_eq!(<Point as Entry>::WORDS, 2);
    }
}
