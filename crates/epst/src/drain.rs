//! Shared frontier machinery for resumable best-first extraction.
//!
//! Both PSTs are heap-ordered trees of pages: everything stored at a node
//! scores at least as high as everything stored strictly below it. That makes
//! "give me the next `n` points in descending score order" a best-first
//! search whose entire state is one priority queue — the *frontier* — over
//! two kinds of entries:
//!
//! * **runs** — a visited page's surviving points, sorted and consumed
//!   head-first, keyed by the current head's exact score;
//! * **unvisited nodes**, keyed by an upper bound on every score in their
//!   subtree (a child summary maximum, a pilot representative, or the
//!   parent's cache minimum).
//!
//! Emitting the maximum is therefore always safe: a run head above every
//! node bound beats every unseen point. A node entry at the top is expanded
//! — its page is read once, its in-window points become one run entry, its
//! overlapping children become node entries — and the search continues.
//! Because the frontier owns all of its state (no borrows into the tree), a
//! drain can be **suspended between pulls and resumed later**, which is what
//! makes the query plane's escalation rounds incremental: a later round
//! picks up exactly where the previous one stopped instead of re-descending
//! from the root and re-materializing the emitted prefix.
//!
//! The steady-state cost per emitted point is kept small by two layout
//! choices. Runs and nodes live in *separate* heaps: a point emission only
//! sifts the run heap (`O(live pages)` entries), never the much larger pool
//! of pending node bounds, which is touched once per page instead of once
//! per point. And every heap entry carries its rank key inline, so
//! comparisons never chase into a run's spill vector.
//!
//! Large pulls skip the per-point merge entirely (*bulk mode*): pages are
//! expanded best-first into one flat unordered pool, a quickselect finds the
//! `n`-th score, only the winning prefix is sorted, and the remainder is
//! stashed loose — re-sorted into a run lazily, and only if a later
//! per-point pull actually needs it. Selection touches each pooled point
//! `O(1)` times instead of paying a heap sift per emission, which is what
//! keeps deep pulls (`k ≫ B`) CPU-cheap on top of being I/O-cheap.
//!
//! A drain is only meaningful against the tree state it was primed on;
//! callers that interleave updates must discard and rebuild it (the cursor
//! layer gates reuse on the index's version stamp).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::point::Point;

/// A run-heap entry: the head's rank key inline, the rest of the run parked
/// in the frontier's spill slab (`slot` indexes it). Keeping the entry a
/// 24-byte `Copy` means heap sifts move small flat data and comparisons
/// never leave the heap's backing array. Ordered by `(score, x)` — scores
/// are distinct system-wide, the coordinate is a deterministic tiebreak for
/// defence in depth.
#[derive(Debug, Clone, Copy)]
struct RunEntry {
    score: u64,
    x: u64,
    slot: u32,
}

impl PartialEq for RunEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.score, self.x) == (other.score, other.x)
    }
}
impl Eq for RunEntry {}
impl PartialOrd for RunEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RunEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.score, self.x).cmp(&(other.score, other.x))
    }
}

/// A node-heap entry: an unvisited node and the inclusive upper bound on
/// every score in its subtree.
#[derive(Debug, Clone, Copy)]
struct NodeEntry<I> {
    bound: u64,
    id: I,
}

impl<I> PartialEq for NodeEntry<I> {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl<I> Eq for NodeEntry<I> {}
impl<I> PartialOrd for NodeEntry<I> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<I> Ord for NodeEntry<I> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound.cmp(&other.bound)
    }
}

/// What a frontier hands back per step: the globally next point, or the
/// next node to expand (the caller reads its page and pushes the results).
pub(crate) enum Step<I> {
    Point(Point),
    Expand(I, u64),
}

/// The owned descent frontier of a resumable drain.
#[derive(Debug)]
pub(crate) struct Frontier<I> {
    /// Pending runs, keyed by head score. One entry per visited page that
    /// still has unemitted points — point emissions sift only this heap.
    runs: BinaryHeap<RunEntry>,
    /// Each run's remaining points, sorted ascending by score and consumed
    /// from the back (the head — the highest remaining score — is `last()`).
    /// Indexed by [`RunEntry::slot`]; spent slots are recycled via `free`.
    spill: Vec<Vec<Point>>,
    free: Vec<u32>,
    /// Pending subtrees, keyed by score upper bound. Touched once per
    /// expansion, not once per point.
    nodes: BinaryHeap<NodeEntry<I>>,
    /// Unordered pending points: the unemitted remainder a bulk pull stashed
    /// without sorting (it may never be needed again). `step()` folds them
    /// back into a proper run lazily; bulk pulls reclaim them as-is.
    loose: Vec<Point>,
    /// Candidate buffer of an in-progress bulk pull: every point seen that
    /// is not yet provably outside the requested top `n`. Emptied back into
    /// `out`/`loose` by [`finish_bulk`](Self::finish_bulk).
    bulk_buf: Vec<Point>,
    /// Bulk routing threshold: the running `n`-th best score of the pull.
    /// Points at or below it go straight to `loose` (kept for resumption,
    /// out of this pull); points above it are candidates.
    cut: Option<u64>,
    /// While set, [`push_run`](Self::push_run) routes points through
    /// `bulk_buf`/`loose` instead of building a heap run — expansion during
    /// a bulk pull, where order is recovered once by selection at the end.
    bulk: bool,
    primed: bool,
}

/// Descending score — the emission order. Scores are distinct system-wide;
/// the heap path's `(score, x)` tiebreak exists for defence in depth only,
/// so ordering bulk output by score alone emits the same sequence while
/// keeping comparisons a single `u64`.
fn desc(a: &Point, b: &Point) -> Ordering {
    b.score.cmp(&a.score)
}

const RADIX_BITS: u32 = 11;
const RADIX_BUCKETS: usize = 1 << RADIX_BITS;

/// Sort descending by score. Score universes are often dense (identifiers,
/// counters), so when the observed range fits two radix digits an LSD radix
/// sort does it branchlessly in two scatter passes — ~3× faster than the
/// comparison sort at the few-thousand-point sizes bulk pulls emit. Wide
/// ranges fall back to the comparison sort.
fn sort_desc(pts: &mut [Point]) {
    let len = pts.len();
    if len < 128 {
        pts.sort_unstable_by(desc);
        return;
    }
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    for p in pts.iter() {
        lo = lo.min(p.score);
        hi = hi.max(p.score);
    }
    let range = hi - lo;
    let bits = 64 - range.leading_zeros();
    if bits == 0 {
        return; // all scores equal
    }
    let passes = bits.div_ceil(RADIX_BITS);
    if passes > 2 {
        pts.sort_unstable_by(desc);
        return;
    }
    // Ascending radix on the reflected key `range - (score - lo)` sorts
    // descending by score. One pass lands in scratch and is copied back;
    // two passes ping-pong and land in place.
    let mut scratch = pts.to_vec();
    if passes == 1 {
        radix_pass(&scratch, pts, lo, range, 0);
    } else {
        radix_pass(pts, &mut scratch, lo, range, 0);
        radix_pass(&scratch, pts, lo, range, RADIX_BITS);
    }
}

fn radix_pass(from: &[Point], to: &mut [Point], lo: u64, range: u64, shift: u32) {
    let digit = |p: &Point| (((range - (p.score - lo)) >> shift) as usize) & (RADIX_BUCKETS - 1);
    let mut counts = [0u32; RADIX_BUCKETS];
    for p in from {
        counts[digit(p)] += 1;
    }
    let mut sum = 0u32;
    for c in counts.iter_mut() {
        let start = sum;
        sum += *c;
        *c = start;
    }
    for p in from {
        let d = digit(p);
        to[counts[d] as usize] = *p;
        counts[d] += 1;
    }
}

impl<I> Frontier<I> {
    pub fn new() -> Self {
        Self {
            runs: BinaryHeap::new(),
            spill: Vec::new(),
            free: Vec::new(),
            nodes: BinaryHeap::new(),
            loose: Vec::new(),
            bulk_buf: Vec::new(),
            cut: None,
            bulk: false,
            primed: false,
        }
    }

    /// Whether the root has been pushed yet (done lazily on the first pull so
    /// constructing a drain costs no I/Os).
    pub fn primed(&self) -> bool {
        self.primed
    }

    pub fn set_primed(&mut self) {
        self.primed = true;
    }

    /// Push a visited page's surviving points as one run (sorted here;
    /// callers pass them in page order). No-op when empty. During a bulk
    /// pull the points go to the loose pool instead — no per-page sort.
    pub fn push_run(&mut self, mut pts: Vec<Point>) {
        if pts.is_empty() {
            return;
        }
        if self.bulk {
            self.extend_bulk(pts.into_iter());
            return;
        }
        pts.sort_unstable_by_key(|p| p.score);
        let head = *pts.last().expect("non-empty run");
        let slot = match self.free.pop() {
            Some(s) => {
                self.spill[s as usize] = pts;
                s
            }
            None => {
                self.spill.push(pts);
                (self.spill.len() - 1) as u32
            }
        };
        self.runs.push(RunEntry {
            score: head.score,
            x: head.x,
            slot,
        });
    }

    pub fn push_node(&mut self, bound: u64, id: I) {
        self.nodes.push(NodeEntry { bound, id });
    }

    // ----- bulk-pull support -----

    /// Whether a bulk pull is in progress.
    pub fn is_bulk(&self) -> bool {
        self.bulk
    }

    /// Start a bulk pull: every pending point — run heads, spilled tails,
    /// loose stash — becomes a candidate, and expansion routes new points
    /// by the running threshold instead of building sorted runs.
    pub fn begin_bulk(&mut self) {
        self.bulk = true;
        self.cut = None;
        self.runs.clear();
        for run in &mut self.spill {
            self.bulk_buf.append(run);
        }
        self.spill.clear();
        self.free.clear();
        self.bulk_buf.append(&mut self.loose);
    }

    /// Route freshly expanded points: candidates to the bulk buffer, points
    /// at or below the threshold straight to the resumption stash.
    pub fn extend_bulk(&mut self, pts: impl Iterator<Item = Point>) {
        match self.cut {
            None => self.bulk_buf.extend(pts),
            Some(c) => {
                for p in pts {
                    if p.score > c {
                        self.bulk_buf.push(p);
                    } else {
                        self.loose.push(p);
                    }
                }
            }
        }
    }

    /// Tighten the threshold once the candidate buffer outgrows `1.5n`: one
    /// quickselect finds the running `n`-th best — the tightest cut any
    /// strategy could have at this moment — and the overflow moves to the
    /// stash. Amortized `O(1)` selection work per point. Returns the current
    /// threshold.
    pub fn compact_bulk(&mut self, n: usize) -> Option<u64> {
        if self.bulk_buf.len() >= n.saturating_add(n / 2) {
            self.bulk_buf.select_nth_unstable_by(n - 1, desc);
            self.cut = Some(self.bulk_buf[n - 1].score);
            self.loose.extend_from_slice(&self.bulk_buf[n..]);
            self.bulk_buf.truncate(n);
        }
        self.cut
    }

    /// End a bulk pull: sort the winning prefix into `out` (descending) and
    /// stash the unemitted remainder unsorted — it is folded back into a
    /// sorted run only if a later per-point `step()` needs it. Returns how
    /// many points were emitted.
    pub fn finish_bulk(&mut self, n: usize, out: &mut Vec<Point>) -> usize {
        self.bulk = false;
        self.cut = None;
        let take = n.min(self.bulk_buf.len());
        if take > 0 {
            if self.bulk_buf.len() > take {
                self.bulk_buf.select_nth_unstable_by(take - 1, desc);
            }
            sort_desc(&mut self.bulk_buf[..take]);
        }
        let leftover = self.bulk_buf.split_off(take);
        out.append(&mut self.bulk_buf);
        if self.loose.is_empty() {
            self.loose = leftover; // adopt the buffer, no copy
        } else {
            self.loose.extend_from_slice(&leftover);
        }
        take
    }

    /// The largest pending node bound, if any node is pending.
    pub fn top_node_bound(&self) -> Option<u64> {
        self.nodes.peek().map(|n| n.bound)
    }

    /// Pop the node with the largest bound.
    pub fn pop_node(&mut self) -> Option<(I, u64)> {
        self.nodes.pop().map(|n| (n.id, n.bound))
    }

    /// The next event in rank order, consuming run heads in place: the top
    /// run's head is emitted and its entry re-keyed under
    /// [`std::collections::binary_heap::PeekMut`], so a point emission costs
    /// one sift of the run heap (and none at all while the same run stays on
    /// top). A node whose bound ties the best run head is expanded before
    /// the head is emitted — only reachable with non-distinct scores, but
    /// cheap insurance.
    pub fn step(&mut self) -> Option<Step<I>> {
        if !self.loose.is_empty() {
            let stash = std::mem::take(&mut self.loose);
            self.push_run(stash);
        }
        let bound = self.nodes.peek().map(|n| n.bound);
        match self.runs.peek_mut() {
            Some(mut top) if bound.is_none_or(|b| top.score > b) => {
                let slot = top.slot;
                let pts = &mut self.spill[slot as usize];
                let head = pts.pop().expect("runs are never empty");
                match pts.last().copied() {
                    Some(next) => {
                        top.score = next.score;
                        top.x = next.x;
                        // Dropping the guard sifts the re-keyed entry down.
                    }
                    None => {
                        pts.shrink_to_fit(); // return the spent buffer now
                        self.free.push(slot);
                        std::collections::binary_heap::PeekMut::pop(top);
                    }
                }
                Some(Step::Point(head))
            }
            _ => {
                let n = self.nodes.pop()?;
                Some(Step::Expand(n.id, n.bound))
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
            && self.loose.is_empty()
            && self.bulk_buf.is_empty()
            && self.nodes.is_empty()
    }
}
