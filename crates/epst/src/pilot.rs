//! The pilot-set external priority search tree of §2 (Lemma 1).
//!
//! The base tree `T` is a weight-balanced B-tree over the x-coordinates with
//! branching parameter `Θ(B)`. Every internal base node `u` carries a balanced
//! binary *secondary tree* `T(u)` whose leaves are the slabs of `u`'s
//! children; concatenating all secondary trees (the leaf for child `u'`
//! adopting the root of `T(u')` as its only child) yields the *script tree*
//! 𝒯 of height `O(lg n)`. Every script node `v` owns a *pilot set*: the
//! highest points of its slab that are not stored at a script ancestor, capped
//! at `Θ(B)` points (one block). The lowest pilot point is the node's
//! *representative*; each internal base node keeps a *representative block*
//! listing the representatives of all script nodes of its secondary tree, so
//! that updates can descend one base level per I/O.
//!
//! * Queries (`top-k`): walk the two boundary script paths (`O(lg n)` I/Os),
//!   form the concatenated max-heap over the hanging subtrees `Π`, extract
//!   `φ·(lg n + k/B)` representatives with best-first heap selection
//!   (standing in for Frederickson, see DESIGN.md), expand by siblings and
//!   children (the set `S*_R`), and keep the `k` best of the collected pilot
//!   points — `O(lg n + k/B)` I/Os.
//! * Insertions descend via representative blocks (`O(log_B n)` I/Os) and
//!   resolve pilot overflow with *push-downs*; deletions locate the holder via
//!   representative blocks and resolve underflow with *pull-ups*; base-tree
//!   splits rebuild the secondary structures of the split region, and a global
//!   rebuild runs after `n/2` deletions — `O(log_B n)` amortized I/Os per
//!   update (Lemma 3's token argument).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use emsim::{BlockFile, Device, Page, PageId};
use heapsel::{select_top, HeapSource};
use wbbtree::{NodeId, WbbConfig, WbbTree};

use crate::drain::{Frontier, Step};
use crate::point::Point;
use crate::top_k_by_score;

/// Parameters of a [`PilotPst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PilotConfig {
    /// Base-tree branching parameter (`Θ(B)`).
    pub branching: usize,
    /// Base-tree leaf target (keys per leaf).
    pub leaf_target: usize,
    /// Maximum pilot-set size (one block of points).
    pub pilot_max: usize,
    /// The constant `φ` of the query algorithm (the paper proves `φ = 16`
    /// suffices).
    pub phi: usize,
}

impl PilotConfig {
    /// Derive a configuration from the device's block size.
    pub fn for_device(device: &Device) -> Self {
        let b = device.block_words();
        let branching = (b / 32).clamp(2, 32);
        let pilot_max = ((b.saturating_sub(16)) / Point::WORDS).max(8);
        let leaf_target = (pilot_max / 2).max(4);
        Self {
            branching,
            leaf_target,
            pilot_max,
            phi: 16,
        }
    }

    fn pilot_target(&self) -> usize {
        (self.pilot_max / 2).max(1)
    }

    fn pilot_min(&self) -> usize {
        (self.pilot_max / 8).max(1)
    }
}

/// A script-tree node page: routing information plus the pilot set.
#[derive(Debug, Clone)]
struct ScriptNode {
    /// Base node whose secondary tree this script node belongs to.
    owner: NodeId,
    /// Script parent (NULL for the global script root).
    parent: PageId,
    /// Script children as `(max x routed into the child, child page)`.
    children: Vec<(u64, PageId)>,
    /// The pilot set.
    pilot: Vec<Point>,
}

impl Page for ScriptNode {
    fn words(&self) -> usize {
        8 + self.children.len() * 2 + self.pilot.len() * Point::WORDS
    }
}

impl ScriptNode {
    fn rep(&self) -> Option<u64> {
        self.pilot.iter().map(|p| p.score).min()
    }
}

/// Representative-block entry for one script node of a secondary tree.
#[derive(Debug, Clone, Copy)]
struct RepEntry {
    script: PageId,
    rep: u64,
    len: u32,
    below: u64,
}

/// Representative block of one internal base node.
#[derive(Debug, Clone, Default)]
struct RepBlock {
    entries: Vec<RepEntry>,
}

impl Page for RepBlock {
    fn words(&self) -> usize {
        2 + self.entries.len() * 4
    }
}

/// The §2 structure. See the module docs.
pub struct PilotPst {
    config: PilotConfig,
    base: WbbTree<u64>,
    scripts: BlockFile<ScriptNode>,
    reps: BlockFile<RepBlock>,
    /// Root of the whole script tree.
    script_root: RwLock<PageId>,
    /// Directory: internal base node → its representative block.
    rep_of: RwLock<HashMap<NodeId, PageId>>,
    /// Directory: base node → the script node that represents its slab
    /// (the root of `T(u)` for internal `u`, the slab leaf for a base leaf).
    slab_of: RwLock<HashMap<NodeId, PageId>>,
    len: AtomicU64,
    deletes: AtomicU64,
}

impl PilotPst {
    /// Create an empty structure.
    pub fn new(device: &Device, name: &str) -> Self {
        let config = PilotConfig::for_device(device);
        Self::with_config(device, name, config)
    }

    /// Create an empty structure with explicit parameters.
    pub fn with_config(device: &Device, name: &str, config: PilotConfig) -> Self {
        let base = WbbTree::new(
            device,
            &format!("{name}.base"),
            WbbConfig::new(config.branching, config.leaf_target, 1),
        );
        let scripts = device.open_file::<ScriptNode>(&format!("{name}.script"));
        let reps = device.open_file::<RepBlock>(&format!("{name}.reps"));
        let s = Self {
            config,
            base,
            scripts,
            reps,
            script_root: RwLock::new(PageId::NULL),
            rep_of: RwLock::new(HashMap::new()),
            slab_of: RwLock::new(HashMap::new()),
            len: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
        };
        s.rebuild_all(&[]);
        s
    }

    /// Number of stored points.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn script_root(&self) -> PageId {
        *self.script_root.read().unwrap()
    }

    fn set_script_root(&self, id: PageId) {
        *self.script_root.write().unwrap() = id;
    }

    /// Space in blocks.
    pub fn space_blocks(&self) -> usize {
        self.base.space_blocks() + self.scripts.live_pages() + self.reps.live_pages()
    }

    /// The configuration in use.
    pub fn config(&self) -> PilotConfig {
        self.config
    }

    // ----- script tree construction -----

    /// Rebuild everything from scratch from `points`.
    pub fn rebuild_all(&self, points: &[Point]) {
        // Drop old secondary pages.
        for id in self.scripts.live_ids() {
            self.scripts.free(id);
        }
        for id in self.reps.live_ids() {
            self.reps.free(id);
        }
        self.rep_of.write().unwrap().clear();
        self.slab_of.write().unwrap().clear();

        let mut xs: Vec<u64> = points.iter().map(|p| p.x).collect();
        xs.sort_unstable();
        xs.dedup();
        self.base.bulk_load(&xs);
        self.len.store(points.len() as u64, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);

        let root = self.base.root();
        let script_root = self.build_script(root, PageId::NULL);
        self.set_script_root(script_root);
        let mut sorted: Vec<Point> = points.to_vec();
        sorted.sort_unstable_by_key(|p| std::cmp::Reverse(p.score));
        self.assign_pilots(script_root, sorted);
        self.rebuild_rep_blocks_under(root);
    }

    /// Build the secondary/script structure for the base subtree rooted at
    /// `base_node`; returns the script node representing `base_node`'s slab.
    fn build_script(&self, base_node: NodeId, script_parent: PageId) -> PageId {
        let children = self.base.children(base_node);
        if children.is_empty() {
            // Base leaf: a single slab-leaf script node.
            let page = self.scripts.alloc(ScriptNode {
                owner: base_node,
                parent: script_parent,
                children: Vec::new(),
                pilot: Vec::new(),
            });
            self.slab_of.write().unwrap().insert(base_node, page);
            return page;
        }
        // Balanced binary tree over the child slabs.
        let leaves: Vec<(u64, NodeId)> = children.iter().map(|c| (c.max_key, c.id)).collect();
        let root = self.build_binary(base_node, script_parent, &leaves);
        self.slab_of.write().unwrap().insert(base_node, root);
        root
    }

    /// Build a balanced binary script tree over `slabs` (child max-key, child
    /// base node); returns its root. Slab leaves adopt the recursively built
    /// script of their base child.
    fn build_binary(
        &self,
        owner: NodeId,
        script_parent: PageId,
        slabs: &[(u64, NodeId)],
    ) -> PageId {
        if slabs.len() == 1 {
            let (max_key, base_child) = slabs[0];
            let page = self.scripts.alloc(ScriptNode {
                owner,
                parent: script_parent,
                children: Vec::new(),
                pilot: Vec::new(),
            });
            // Concatenation: the slab leaf adopts the child's script root as
            // its only child (unless the child is a base leaf, which gets its
            // own slab-leaf node directly).
            if !self.base.is_leaf(base_child) {
                let child_root = self.build_script(base_child, page);
                self.scripts
                    .with_mut(page, |n| n.children.push((max_key, child_root)));
            } else {
                let child_leaf = self.build_script(base_child, page);
                self.scripts
                    .with_mut(page, |n| n.children.push((max_key, child_leaf)));
            }
            return page;
        }
        let mid = slabs.len() / 2;
        let page = self.scripts.alloc(ScriptNode {
            owner,
            parent: script_parent,
            children: Vec::new(),
            pilot: Vec::new(),
        });
        let left = self.build_binary(owner, page, &slabs[..mid]);
        let right = self.build_binary(owner, page, &slabs[mid..]);
        let left_max = slabs[mid - 1].0;
        let right_max = slabs[slabs.len() - 1].0;
        self.scripts.with_mut(page, |n| {
            n.children.push((left_max, left));
            n.children.push((right_max, right));
        });
        page
    }

    /// Assign `pts` (sorted by descending score) to the pilot sets of the
    /// script subtree rooted at `script`: the top `pilot_target` stay here,
    /// the rest are routed by x to the children.
    fn assign_pilots(&self, script: PageId, pts: Vec<Point>) {
        let children: Vec<(u64, PageId)> = self.scripts.with(script, |n| n.children.clone());
        let keep = if children.is_empty() {
            pts.len()
        } else {
            pts.len().min(self.config.pilot_target())
        };
        let (here, rest) = pts.split_at(keep);
        self.scripts.with_mut(script, |n| n.pilot = here.to_vec());
        if children.is_empty() {
            debug_assert!(rest.is_empty(), "a slab leaf must absorb its points");
            return;
        }
        let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); children.len()];
        for &p in rest {
            let idx = children
                .iter()
                .position(|&(mk, _)| p.x <= mk)
                .unwrap_or(children.len() - 1);
            buckets[idx].push(p);
        }
        for ((_, child), bucket) in children.iter().zip(buckets) {
            self.assign_pilots(*child, bucket);
        }
    }

    /// Recompute the representative blocks of every internal base node in the
    /// subtree of `base_node`.
    fn rebuild_rep_blocks_under(&self, base_node: NodeId) {
        for node in self.base.subtree_nodes_bottom_up(base_node) {
            if !self.base.is_leaf(node) {
                self.rebuild_rep_block(node);
            }
        }
    }

    /// Script nodes belonging to `T(u)` (the secondary tree of base node `u`),
    /// found by walking down from its root without crossing into other
    /// owners.
    fn secondary_nodes(&self, u: NodeId) -> Vec<PageId> {
        let root = *self
            .slab_of
            .read()
            .unwrap()
            .get(&u)
            .expect("script root exists");
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            let (owner, children) = self.scripts.with(s, |n| (n.owner, n.children.clone()));
            if owner != u {
                continue;
            }
            out.push(s);
            for (_, c) in children {
                let child_owner = self.scripts.with(c, |n| n.owner);
                if child_owner == u {
                    stack.push(c);
                }
            }
        }
        out
    }

    fn rebuild_rep_block(&self, u: NodeId) {
        let mut entries = Vec::new();
        for s in self.secondary_nodes(u) {
            let (rep, len) = self
                .scripts
                .with(s, |n| (n.rep().unwrap_or(0), n.pilot.len() as u32));
            let below = self.count_points_below_script(s);
            entries.push(RepEntry {
                script: s,
                rep,
                len,
                below,
            });
        }
        let page = {
            let mut map = self.rep_of.write().unwrap();
            match map.get(&u) {
                Some(&p) => p,
                None => {
                    let p = self.reps.alloc(RepBlock::default());
                    map.insert(u, p);
                    p
                }
            }
        };
        self.reps.with_mut(page, |b| b.entries = entries);
    }

    fn count_points_below_script(&self, script: PageId) -> u64 {
        let children: Vec<(u64, PageId)> = self.scripts.with(script, |n| n.children.clone());
        let mut total = 0;
        for (_, c) in children {
            total += self.scripts.with(c, |n| n.pilot.len() as u64);
            total += self.count_points_below_script(c);
        }
        total
    }

    // ----- representative-block bookkeeping -----

    fn rep_block_of(&self, u: NodeId) -> PageId {
        *self
            .rep_of
            .read()
            .unwrap()
            .get(&u)
            // audit: allow(panic_path, reason = "fail-fast on a corrupted rep_of map; the node id in the message is the diagnostic")
            .unwrap_or_else(|| panic!("no representative block for base node {u:?}"))
    }

    /// Refresh the rep/len entry of `script` (owned by `owner`), adjusting the
    /// `below` counter by `below_delta`.
    fn refresh_rep_entry(&self, owner: NodeId, script: PageId, below_delta: i64) {
        if self.base.is_leaf(owner) {
            return; // base leaves have no representative block
        }
        let (rep, len) = self
            .scripts
            .with(script, |n| (n.rep().unwrap_or(0), n.pilot.len() as u32));
        let page = self.rep_block_of(owner);
        self.reps.with_mut(page, |b| {
            if let Some(e) = b.entries.iter_mut().find(|e| e.script == script) {
                e.rep = rep;
                e.len = len;
                e.below = (e.below as i64 + below_delta).max(0) as u64;
            }
        });
    }

    // ----- updates -----

    /// Insert a point (distinct x and score). `O(log_B n)` amortized I/Os.
    pub fn insert(&self, pt: Point) {
        let report = self.base.insert(pt.x);
        debug_assert!(report.inserted, "coordinates must be distinct");
        if !report.splits.is_empty() {
            // Rebuild the secondary structures of the subtree of the highest
            // split's parent, exactly as the paper rebuilds the subtree of the
            // parent of the highest unbalanced node.
            let top = report.splits.last().expect("checked non-empty above");
            self.rebuild_subtree_secondary(top.parent);
        }

        // Descend by representative blocks to the script node that should
        // incorporate the point.
        let mut passed: Vec<(NodeId, PageId)> = Vec::new();
        let mut cur = self.script_root();
        let target = loop {
            let (owner, children, len, rep, below) = self.scripts.with(cur, |n| {
                (
                    n.owner,
                    n.children.clone(),
                    n.pilot.len(),
                    n.rep().unwrap_or(0),
                    0u64,
                )
            });
            let below = if self.base.is_leaf(owner) {
                below
            } else {
                let page = self.rep_block_of(owner);
                self.reps.with(page, |b| {
                    b.entries
                        .iter()
                        .find(|e| e.script == cur)
                        .map(|e| e.below)
                        .unwrap_or(0)
                })
            };
            if children.is_empty() {
                break cur; // slab leaf: the point must live here
            }
            if below == 0 || (len > 0 && pt.score > rep) || len < self.config.pilot_min() {
                break cur;
            }
            passed.push((owner, cur));
            let idx = children
                .iter()
                .position(|&(mk, _)| pt.x <= mk)
                .unwrap_or(children.len() - 1);
            cur = children[idx].1;
        };

        for (owner, script) in &passed {
            self.refresh_rep_entry(*owner, *script, 1);
        }
        self.push_points_down(target, vec![pt]);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Delete a point (exact x and score). Returns `false` if absent.
    pub fn delete(&self, pt: Point) -> bool {
        // Locate the holder: the first script node on the x-path whose
        // representative is ≤ the point's score must hold it if it exists.
        let mut passed: Vec<(NodeId, PageId)> = Vec::new();
        let mut cur = self.script_root();
        let holder = loop {
            let (owner, children, pilot) = self
                .scripts
                .with(cur, |n| (n.owner, n.children.clone(), n.pilot.clone()));
            if pilot.iter().any(|q| q.x == pt.x && q.score == pt.score) {
                break Some((owner, cur));
            }
            let rep = pilot.iter().map(|p| p.score).min();
            if let Some(rep) = rep {
                if pt.score >= rep {
                    // Everything below is strictly smaller than the rep.
                    break None;
                }
            }
            if children.is_empty() {
                break None;
            }
            passed.push((owner, cur));
            let idx = children
                .iter()
                .position(|&(mk, _)| pt.x <= mk)
                .unwrap_or(children.len() - 1);
            cur = children[idx].1;
        };
        let Some((owner, holder)) = holder else {
            return false;
        };
        self.scripts.with_mut(holder, |n| {
            n.pilot.retain(|q| !(q.x == pt.x && q.score == pt.score));
        });
        self.refresh_rep_entry(owner, holder, 0);
        for (o, s) in &passed {
            self.refresh_rep_entry(*o, *s, -1);
        }
        self.base.delete(pt.x);
        self.pull_up_if_needed(holder);
        self.len.fetch_sub(1, Ordering::Relaxed);
        self.deletes.fetch_add(1, Ordering::Relaxed);
        if self.deletes.load(Ordering::Relaxed) > self.len() / 2 + 16 {
            let pts = self.all_points();
            self.rebuild_all(&pts);
        }
        true
    }

    /// Merge `incoming` into `script`'s pilot set; on overflow keep the
    /// highest `pilot_target` points here and cascade the rest downwards (the
    /// push-down of the paper). Pages are never written above their capacity.
    fn push_points_down(&self, script: PageId, incoming: Vec<Point>) {
        if incoming.is_empty() {
            return;
        }
        let (owner, children, mut pilot) = self
            .scripts
            .with(script, |n| (n.owner, n.children.clone(), n.pilot.clone()));
        pilot.extend(incoming);
        if pilot.len() <= self.config.pilot_max || children.is_empty() {
            // A slab leaf may exceed `pilot_max` by the couple of keys its base
            // leaf can hold beyond the split threshold; the sizing in
            // `PilotConfig::for_device` keeps that within one block.
            self.scripts.with_mut(script, |n| n.pilot = pilot);
            self.refresh_rep_entry(owner, script, 0);
            return;
        }
        pilot.sort_unstable_by_key(|p| std::cmp::Reverse(p.score));
        let moved: Vec<Point> = pilot.split_off(self.config.pilot_target());
        self.scripts.with_mut(script, |n| n.pilot = pilot);
        self.refresh_rep_entry(owner, script, moved.len() as i64);
        let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); children.len()];
        for p in moved {
            let idx = children
                .iter()
                .position(|&(mk, _)| p.x <= mk)
                .unwrap_or(children.len() - 1);
            buckets[idx].push(p);
        }
        for ((_, child), bucket) in children.iter().zip(buckets) {
            self.push_points_down(*child, bucket);
        }
    }

    fn pull_up_if_needed(&self, script: PageId) {
        let (owner, children, pilot_len) = self
            .scripts
            .with(script, |n| (n.owner, n.children.clone(), n.pilot.len()));
        if children.is_empty() || pilot_len >= self.config.pilot_min() {
            return;
        }
        // Pull the subtree's best points up **one at a time**, refilling the
        // source child before the next selection. A one-shot multi-pull over
        // the children's *current* pilots is wrong: once it drains a child,
        // the child's own refill hoists grandchild points that can score
        // above this node's post-pull minimum — breaking the pilot ordering
        // that delete's holder search and the representative pruning rely
        // on (caught by the trace harness; see
        // traces/pilot_pull_up_ordering.trace).
        let want = self.config.pilot_target().saturating_sub(pilot_len);
        let mut pulled = 0usize;
        for _ in 0..want {
            // The best candidate is the max over the direct children's
            // pilots: each child maintains "empty pilot ⇒ empty subtree",
            // so the direct maxima cover everything below.
            let mut best: Option<(PageId, Point)> = None;
            for (_, c) in &children {
                let cmax = self
                    .scripts
                    .with(*c, |n| n.pilot.iter().copied().max_by_key(|p| p.score));
                if let Some(p) = cmax {
                    if best.map(|(_, b)| p.score > b.score).unwrap_or(true) {
                        best = Some((*c, p));
                    }
                }
            }
            let Some((child, p)) = best else { break };
            self.scripts.with_mut(child, |n| {
                n.pilot.retain(|q| !(q.x == p.x && q.score == p.score))
            });
            self.scripts.with_mut(script, |n| n.pilot.push(p));
            pulled += 1;
            let child_owner = self.scripts.with(child, |n| n.owner);
            self.refresh_rep_entry(child_owner, child, 0);
            self.pull_up_if_needed(child);
        }
        if pulled > 0 {
            self.refresh_rep_entry(owner, script, -(pulled as i64));
        }
    }

    /// Rebuild the secondary structures (script trees, pilot sets,
    /// representative blocks) of the base subtree rooted at `base_node` — the
    /// paper's pilot grounding + bottom-up refill, implemented as a collect
    /// and top-down redistribution.
    fn rebuild_subtree_secondary(&self, base_node: NodeId) {
        // A freshly created base root has no script node yet; the region it
        // covers is the whole old script tree.
        let slab = self.slab_of.read().unwrap().get(&base_node).copied().or({
            if self.base.root() == base_node && !self.script_root().is_null() {
                Some(self.script_root())
            } else {
                None
            }
        });
        let (script_parent, old_root) = match slab {
            Some(root) => (self.scripts.with(root, |n| n.parent), Some(root)),
            None => (PageId::NULL, None),
        };
        // Collect all pilot points stored in the region's script nodes.
        let mut pts = Vec::new();
        if let Some(root) = old_root {
            self.collect_and_free_script(root, &mut pts);
        }
        // Drop stale directory entries and representative blocks.
        for node in self.base.subtree_nodes_bottom_up(base_node) {
            self.slab_of.write().unwrap().remove(&node);
            if let Some(p) = self.rep_of.write().unwrap().remove(&node) {
                self.reps.free(p);
            }
        }
        let new_root = self.build_script(base_node, script_parent);
        let mut sorted = pts;
        sorted.sort_unstable_by_key(|p| std::cmp::Reverse(p.score));
        self.assign_pilots(new_root, sorted);
        self.rebuild_rep_blocks_under(base_node);
        // Reattach to the script parent (or install as the global root).
        if script_parent.is_null() {
            self.set_script_root(new_root);
        } else {
            self.scripts.with_mut(script_parent, |n| {
                for slot in n.children.iter_mut() {
                    if Some(slot.1) == old_root {
                        slot.1 = new_root;
                    }
                }
            });
            // The ancestors' below counters may have drifted; refresh the
            // owning base node's representative block entirely.
            let parent_owner = self.scripts.with(script_parent, |n| n.owner);
            if !self.base.is_leaf(parent_owner) {
                self.rebuild_rep_block(parent_owner);
            }
        }
    }

    fn collect_and_free_script(&self, script: PageId, out: &mut Vec<Point>) {
        let (children, pilot) = self
            .scripts
            .with(script, |n| (n.children.clone(), n.pilot.clone()));
        out.extend(pilot);
        for (_, c) in children {
            self.collect_and_free_script(c, out);
        }
        self.scripts.free(script);
    }

    // ----- queries -----

    /// Report the `k` highest-scoring points with `x ∈ [x1, x2]`, in
    /// descending score order. `O(lg n + k/B)` I/Os.
    pub fn query_top_k(&self, x1: u64, x2: u64, k: usize) -> Vec<Point> {
        if x1 > x2 || k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Phase 1: the two boundary paths.
        let path1 = self.script_path(x1);
        let path2 = self.script_path(x2);
        let mut candidates: Vec<Point> = Vec::new();
        let mut on_paths: Vec<PageId> = Vec::new();
        for &s in path1.iter().chain(path2.iter()) {
            if !on_paths.contains(&s) {
                on_paths.push(s);
                let pilot = self.scripts.with(s, |n| n.pilot.clone());
                candidates.extend(pilot.into_iter().filter(|p| p.x >= x1 && p.x <= x2));
            }
        }
        // Phase 2: the hanging subtrees Π.
        let roots = self.hanging_roots(&path1, &path2);
        // Phase 3: heap selection of Θ(lg n + k/B) representatives.
        let points_per_block = self.config.pilot_max.max(1);
        let lg_n = emsim::lg(self.len().max(2) as usize) as usize;
        let t = self.config.phi * (lg_n + k / points_per_block + 1);
        let source = PilotHeap { pst: self };
        let selected = select_top(&source, &roots, t);
        let mut sr: Vec<PageId> = selected.iter().map(|s| s.id).collect();
        // Phase 4: expand by siblings and children (S*_R) and gather pilots.
        let mut expansion: Vec<PageId> = Vec::new();
        for &v in &sr {
            let parent = self.scripts.with(v, |n| n.parent);
            if !parent.is_null() && !roots.contains(&v) {
                for (_, sib) in self.scripts.with(parent, |n| n.children.clone()) {
                    if sib != v && !sr.contains(&sib) && !expansion.contains(&sib) {
                        expansion.push(sib);
                    }
                }
            }
            for (_, child) in self.scripts.with(v, |n| n.children.clone()) {
                if !sr.contains(&child) && !expansion.contains(&child) {
                    expansion.push(child);
                }
            }
        }
        sr.extend(expansion);
        for v in sr {
            if on_paths.contains(&v) {
                continue;
            }
            let pilot = self.scripts.with(v, |n| n.pilot.clone());
            candidates.extend(pilot.into_iter().filter(|p| p.x >= x1 && p.x <= x2));
        }
        top_k_by_score(candidates, k)
    }

    /// Root-to-leaf script path toward coordinate `x`.
    fn script_path(&self, x: u64) -> Vec<PageId> {
        let mut path = Vec::new();
        let mut cur = self.script_root();
        loop {
            path.push(cur);
            let children = self.scripts.with(cur, |n| n.children.clone());
            if children.is_empty() {
                return path;
            }
            let idx = children
                .iter()
                .position(|&(mk, _)| x <= mk)
                .unwrap_or(children.len() - 1);
            cur = children[idx].1;
        }
    }

    /// The roots of the hanging subtrees Π: children of the divergent parts of
    /// the two boundary paths that lie strictly between them.
    fn hanging_roots(&self, path1: &[PageId], path2: &[PageId]) -> Vec<PageId> {
        let mut out = Vec::new();
        // Find the lowest common node (paths share a prefix).
        let mut lca_idx = 0;
        while lca_idx + 1 < path1.len()
            && lca_idx + 1 < path2.len()
            && path1[lca_idx + 1] == path2[lca_idx + 1]
        {
            lca_idx += 1;
        }
        // Below the LCA: on path1, everything hanging to the right of the
        // descent; on path2, everything hanging to the left.
        for (path, take_right) in [(path1, true), (path2, false)] {
            for w in path.iter().skip(lca_idx).collect::<Vec<_>>().windows(2) {
                let (node, next) = (*w[0], *w[1]);
                let children = self.scripts.with(node, |n| n.children.clone());
                let next_pos = children.iter().position(|&(_, c)| c == next).unwrap_or(0);
                for (i, &(_, c)) in children.iter().enumerate() {
                    let hanging = if take_right {
                        i > next_pos
                    } else {
                        i < next_pos
                    };
                    if hanging && !path1.contains(&c) && !path2.contains(&c) {
                        let nonempty = self.scripts.with(c, |n| !n.pilot.is_empty());
                        if nonempty && !out.contains(&c) {
                            out.push(c);
                        }
                    }
                }
            }
        }
        out
    }

    // ----- resumable drain -----

    /// Open a resumable best-first drain over `x ∈ [x1, x2]`: repeated
    /// [`PilotDrain::pull`] calls emit the range's points in descending score
    /// order, resuming from the saved frontier instead of re-running the
    /// boundary-path / heap-selection machinery per batch. Emitting `m`
    /// points costs `O(lg n + m/B)` I/Os **in total across all pulls**
    /// (pilot sets hold `Θ(B)` points and are heap-ordered along the script
    /// tree, so the search reads one page per `Θ(B)` emitted points plus the
    /// boundary fringe). Construction costs no I/Os.
    pub fn drain(&self, x1: u64, x2: u64) -> PilotDrain {
        self.drain_window(x1, x2, 0, u64::MAX)
    }

    /// A drain restricted to the score window `lo ≤ score < hi` (with
    /// `hi == u64::MAX` meaning no ceiling) — the resume form used when a
    /// saved frontier was invalidated by a write and must be rebuilt below a
    /// low-water mark.
    pub fn drain_window(&self, x1: u64, x2: u64, lo: u64, hi: u64) -> PilotDrain {
        PilotDrain {
            x1,
            x2,
            lo,
            hi,
            frontier: Frontier::new(),
        }
    }

    /// Read `script`'s page once: its in-window pilot points become one
    /// sorted run entry, its overlapping children become node entries bounded
    /// by the representative (every descendant scores strictly below it).
    fn drain_expand(&self, d: &mut PilotDrain, script: PageId) {
        self.scripts.with(script, |n| {
            let survivors = n.pilot.iter().copied().filter(|q| {
                q.x >= d.x1
                    && q.x <= d.x2
                    && q.score >= d.lo
                    && (d.hi == u64::MAX || q.score < d.hi)
            });
            if d.frontier.is_bulk() {
                d.frontier.extend_bulk(survivors);
            } else {
                d.frontier.push_run(survivors.collect());
            }
            // An empty pilot set means an empty subtree; a representative at
            // or below the floor bounds every descendant under it too.
            let Some(rep) = n.rep() else { return };
            if n.children.is_empty() || rep <= d.lo {
                return;
            }
            // Script child max-keys can lag behind a freshly inserted
            // maximum (inserts route overflow to the last child), so clamp
            // both cuts instead of bailing out past the last key.
            let il = n
                .children
                .partition_point(|&(mk, _)| mk < d.x1)
                .min(n.children.len() - 1);
            let ih = n
                .children
                .partition_point(|&(mk, _)| mk < d.x2)
                .min(n.children.len() - 1);
            for &(_, c) in &n.children[il..=ih] {
                d.frontier.push_node(rep, c);
            }
        });
    }

    /// All stored points (testing / rebuild support).
    pub fn all_points(&self) -> Vec<Point> {
        let mut out = Vec::new();
        let mut stack = vec![self.script_root()];
        while let Some(s) = stack.pop() {
            let (children, pilot) = self
                .scripts
                .with(s, |n| (n.children.clone(), n.pilot.clone()));
            out.extend(pilot);
            stack.extend(children.into_iter().map(|(_, c)| c));
        }
        out
    }

    /// Verify structural invariants (test support): the heap property of pilot
    /// sets along the script tree and the pilot-capacity bounds.
    pub fn check_invariants(&self) {
        let total = self.check_rec(self.script_root(), u64::MAX);
        assert_eq!(total, self.len(), "stored point count disagrees");
    }

    fn check_rec(&self, script: PageId, ancestor_min: u64) -> u64 {
        let (children, pilot) = self
            .scripts
            .with(script, |n| (n.children.clone(), n.pilot.clone()));
        assert!(
            pilot.len() <= self.config.pilot_max + 1,
            "pilot set exceeds its capacity"
        );
        for p in &pilot {
            assert!(
                p.score < ancestor_min || ancestor_min == u64::MAX,
                "pilot point {:?} violates the ancestor ordering",
                p
            );
        }
        let my_min = pilot.iter().map(|p| p.score).min().unwrap_or(ancestor_min);
        if pilot.is_empty() && !children.is_empty() {
            // An empty pilot set must mean an empty subtree below.
            for (_, c) in &children {
                assert_eq!(
                    self.count_points_below_script(*c)
                        + self.scripts.with(*c, |n| n.pilot.len() as u64),
                    0,
                    "empty pilot set above a non-empty subtree"
                );
            }
        }
        let mut total = pilot.len() as u64;
        for (_, c) in children {
            total += self.check_rec(c, my_min);
        }
        total
    }
}

/// A resumable best-first drain over a [`PilotPst`] range, created by
/// [`PilotPst::drain`]. The drain owns its whole descent state (no borrows
/// into the tree), so it can be suspended between pulls and resumed
/// arbitrarily later — **as long as the tree has not been mutated** in
/// between. After any insert, delete, or rebuild the saved frontier is
/// meaningless and the drain must be discarded; the index layers gate reuse
/// on a version stamp.
#[derive(Debug)]
pub struct PilotDrain {
    x1: u64,
    x2: u64,
    /// Inclusive score floor.
    lo: u64,
    /// Exclusive score ceiling (`u64::MAX` = none).
    hi: u64,
    frontier: Frontier<PageId>,
}

/// Pulls at least this size go through the bulk select path instead of the
/// per-point heap merge (see the `drain` module docs). Small enough that
/// every `k ≥ l` query qualifies, large enough that a selection pass over
/// the pool amortizes.
const BULK_PULL_MIN: usize = 64;

impl PilotDrain {
    /// Emit up to `n` further points into `out`, in descending score order,
    /// resuming from the saved frontier. Returns how many were emitted; fewer
    /// than `n` means the drain is exhausted. `pst` must be the structure the
    /// drain was created on, unmutated since.
    pub fn pull(&mut self, pst: &PilotPst, n: usize, out: &mut Vec<Point>) -> usize {
        if !self.frontier.primed() {
            self.frontier.set_primed();
            if self.x1 <= self.x2 && !pst.is_empty() && (self.hi == u64::MAX || self.lo < self.hi) {
                self.frontier.push_node(u64::MAX, pst.script_root());
            }
        }
        if n >= BULK_PULL_MIN {
            return self.pull_bulk(pst, n, out);
        }
        let mut taken = 0;
        while taken < n {
            match self.frontier.step() {
                None => break,
                Some(Step::Point(p)) => {
                    out.push(p);
                    taken += 1;
                }
                Some(Step::Expand(id, _)) => pst.drain_expand(self, id),
            }
        }
        taken
    }

    /// Bulk extraction: expand pages best-first into one flat pool until the
    /// `n`-th best pooled score provably beats every pending subtree, then
    /// quickselect + sort just the winning prefix. The unemitted remainder
    /// goes back to the frontier unsorted (sorted lazily if ever needed), so
    /// the drain stays resumable.
    ///
    /// The stopping rule is exact even with a stale threshold: nodes pop in
    /// descending bound order, and a point can only score below its node's
    /// bound, so when the next bound is `b` *every* point scoring ≥ `b` is
    /// already in the pool. If the pool's `n`-th best is ≥ `b`, nothing
    /// unexpanded can displace the current top `n`. The threshold is
    /// re-selected only after the pool grows by half, keeping selection work
    /// `O(1)` amortized per pooled point; staleness can only cost a few
    /// extra page reads, never correctness.
    fn pull_bulk(&mut self, pst: &PilotPst, n: usize, out: &mut Vec<Point>) -> usize {
        // The frontier's bulk buffer holds every point not yet provably
        // outside the top `n`; `compact_bulk` periodically tightens the
        // routing threshold to the running `n`-th best, after which
        // expansion sends weaker points straight to the resumption stash.
        self.frontier.begin_bulk();
        loop {
            let threshold = self.frontier.compact_bulk(n);
            let Some(b) = self.frontier.top_node_bound() else {
                break;
            };
            // Exact stop: nodes pop in descending bound order and a point
            // scores below its node's bound, so every point ≥ b is already
            // accounted for; a threshold ≥ b proves the top n are in hand.
            if threshold.is_some_and(|t| b <= t) {
                break;
            }
            let (id, _) = self.frontier.pop_node().expect("bound was just peeked");
            pst.drain_expand(self, id);
        }
        self.frontier.finish_bulk(n, out)
    }

    /// Whether the drain has emitted everything in its range and window.
    pub fn is_exhausted(&self) -> bool {
        self.frontier.primed() && self.frontier.is_empty()
    }
}

/// Heap view over the script tree used by the query's heap selection: keys are
/// representatives, children are the script children with non-empty pilots.
struct PilotHeap<'a> {
    pst: &'a PilotPst,
}

impl<'a> HeapSource for PilotHeap<'a> {
    type Id = PageId;

    fn key(&self, node: PageId) -> u64 {
        self.pst.scripts.with(node, |n| n.rep().unwrap_or(0))
    }

    fn children(&self, node: PageId) -> Vec<PageId> {
        self.pst
            .scripts
            .with(node, |n| n.children.clone())
            .into_iter()
            .map(|(_, c)| c)
            .filter(|&c| self.pst.scripts.with(c, |n| !n.pilot.is_empty()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::EmConfig;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    fn device() -> Device {
        Device::new(EmConfig::new(128, 64 * 128))
    }

    fn random_points(seed: u64, n: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs: Vec<u64> = (0..n as u64).map(|i| i * 5 + 1).collect();
        let mut scores: Vec<u64> = (0..n as u64).map(|i| i * 11 + 3).collect();
        xs.shuffle(&mut rng);
        scores.shuffle(&mut rng);
        xs.into_iter()
            .zip(scores)
            .map(|(x, score)| Point { x, score })
            .collect()
    }

    fn oracle_top_k(pts: &[Point], x1: u64, x2: u64, k: usize) -> Vec<Point> {
        let in_range: Vec<Point> = pts
            .iter()
            .filter(|p| p.x >= x1 && p.x <= x2)
            .copied()
            .collect();
        top_k_by_score(in_range, k)
    }

    #[test]
    fn incremental_inserts_answer_top_k() {
        let dev = device();
        let pst = PilotPst::new(&dev, "pilot");
        let pts = random_points(1, 1200);
        for (i, &p) in pts.iter().enumerate() {
            pst.insert(p);
            if i % 400 == 0 {
                pst.check_invariants();
            }
        }
        pst.check_invariants();
        assert_eq!(pst.len(), 1200);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let a = rng.gen_range(0..6000u64);
            let b = rng.gen_range(a..=6000u64);
            let k = rng.gen_range(1..200usize);
            let got = pst.query_top_k(a, b, k);
            let expect = oracle_top_k(&pts, a, b, k);
            assert_eq!(got, expect, "range [{a},{b}] k={k}");
        }
    }

    #[test]
    fn bulk_build_and_full_range_query() {
        let dev = device();
        let pst = PilotPst::new(&dev, "pilot");
        let pts = random_points(9, 3000);
        pst.rebuild_all(&pts);
        pst.check_invariants();
        let got = pst.query_top_k(0, u64::MAX, 10);
        let expect = oracle_top_k(&pts, 0, u64::MAX, 10);
        assert_eq!(got, expect);
        // Large k: the whole range.
        let got = pst.query_top_k(0, u64::MAX, 3000);
        assert_eq!(got.len(), 3000);
    }

    #[test]
    fn deletions_preserve_correctness() {
        let dev = device();
        let pst = PilotPst::new(&dev, "pilot");
        let pts = random_points(5, 900);
        pst.rebuild_all(&pts);
        let mut rng = StdRng::seed_from_u64(6);
        let mut live = pts.clone();
        for _ in 0..500 {
            let idx = rng.gen_range(0..live.len());
            let victim = live.swap_remove(idx);
            assert!(pst.delete(victim), "deleting {victim:?}");
        }
        assert!(!pst.delete(Point {
            x: 10_000_000,
            score: 1
        }));
        pst.check_invariants();
        assert_eq!(pst.len(), live.len() as u64);
        for _ in 0..20 {
            let a = rng.gen_range(0..4500u64);
            let b = rng.gen_range(a..=4500u64);
            let k = rng.gen_range(1..100usize);
            assert_eq!(pst.query_top_k(a, b, k), oracle_top_k(&live, a, b, k));
        }
    }

    #[test]
    fn drain_matches_query_top_k_and_oracle() {
        let dev = device();
        let pst = PilotPst::new(&dev, "pilot");
        let pts = random_points(17, 2000);
        pst.rebuild_all(&pts);
        let mut rng = StdRng::seed_from_u64(18);
        for _ in 0..25 {
            let a = rng.gen_range(0..10_000u64);
            let b = rng.gen_range(a..=10_000u64);
            let k = rng.gen_range(1..400usize);
            let mut drained = Vec::new();
            let mut drain = pst.drain(a, b);
            // Pull in uneven chunks to exercise the saved frontier.
            while drained.len() < k {
                let chunk = rng.gen_range(1..64usize).min(k - drained.len());
                if drain.pull(&pst, chunk, &mut drained) < chunk {
                    break;
                }
            }
            assert_eq!(drained, pst.query_top_k(a, b, k), "range [{a},{b}] k={k}");
            assert_eq!(drained, oracle_top_k(&pts, a, b, k));
        }
    }

    #[test]
    fn drain_stays_exact_after_incremental_updates() {
        let dev = device();
        let pst = PilotPst::new(&dev, "pilot");
        let pts = random_points(19, 900);
        for &p in &pts {
            pst.insert(p);
        }
        let mut rng = StdRng::seed_from_u64(20);
        let mut live = pts.clone();
        for _ in 0..300 {
            let idx = rng.gen_range(0..live.len());
            let victim = live.swap_remove(idx);
            assert!(pst.delete(victim));
        }
        for _ in 0..15 {
            let a = rng.gen_range(0..4500u64);
            let b = rng.gen_range(a..=4500u64);
            let k = rng.gen_range(1..250usize);
            let mut drained = Vec::new();
            pst.drain(a, b).pull(&pst, k, &mut drained);
            assert_eq!(drained, oracle_top_k(&live, a, b, k));
        }
    }

    #[test]
    fn drain_window_excludes_scores_at_or_above_the_mark() {
        let dev = device();
        let pst = PilotPst::new(&dev, "pilot");
        let pts = random_points(23, 1000);
        pst.rebuild_all(&pts);
        let full = oracle_top_k(&pts, 0, u64::MAX, 1000);
        let mark = full[99].score; // resume below the 100th point
        let mut rest = Vec::new();
        pst.drain_window(0, u64::MAX, 0, mark)
            .pull(&pst, usize::MAX, &mut rest);
        assert_eq!(rest, full[100..].to_vec());
    }

    #[test]
    fn drain_io_is_incremental_not_per_round() {
        // Pulling k points in many small batches must cost about the same
        // I/O as one bulk pull — the whole point of the saved frontier.
        let dev = Device::new(EmConfig::new(256, 8 * 256));
        let pst = PilotPst::new(&dev, "pilot");
        let pts = random_points(29, 20_000);
        pst.rebuild_all(&pts);
        let k = 4096usize;

        dev.drop_cache();
        let (_, bulk) = dev.measure(|| {
            let mut out = Vec::new();
            pst.drain(0, u64::MAX).pull(&pst, k, &mut out);
            out
        });
        dev.drop_cache();
        let (_, batched) = dev.measure(|| {
            let mut out = Vec::new();
            let mut drain = pst.drain(0, u64::MAX);
            for _ in 0..k / 64 {
                drain.pull(&pst, 64, &mut out);
            }
            out
        });
        assert!(
            batched.reads <= bulk.reads + 8,
            "batched pulls re-paid descent I/O: {} batched vs {} bulk reads",
            batched.reads,
            bulk.reads
        );
    }

    #[test]
    fn mixed_workload_against_oracle() {
        let dev = device();
        let pst = PilotPst::new(&dev, "pilot");
        let mut rng = StdRng::seed_from_u64(12);
        let mut live: Vec<Point> = Vec::new();
        let mut next = 1u64;
        for step in 0..2500 {
            if !live.is_empty() && rng.gen_bool(0.3) {
                let idx = rng.gen_range(0..live.len());
                let victim = live.swap_remove(idx);
                assert!(pst.delete(victim));
            } else {
                let p = Point {
                    x: next * 23 % 1_000_003,
                    score: next * 13,
                };
                next += 1;
                live.push(p);
                pst.insert(p);
            }
            if step % 600 == 0 {
                pst.check_invariants();
            }
        }
        pst.check_invariants();
        for _ in 0..25 {
            let a = rng.gen_range(0..1_000_003u64);
            let b = rng.gen_range(a..=1_000_003u64);
            let k = rng.gen_range(1..150usize);
            assert_eq!(pst.query_top_k(a, b, k), oracle_top_k(&live, a, b, k));
        }
    }
}
