//! # epst — external priority search trees
//!
//! Two structures over points `(x, score)` in the EM cost model:
//!
//! * [`ThreeSidedPst`] — classic external priority search tree answering
//!   3-sided queries `[x1, x2] × [τ, ∞)` in `O(log_B n + t/B)` I/Os (with the
//!   caveat documented on the type) and supporting `O(log_B n)` amortized
//!   updates. This is the reporting substrate used by the approximate
//!   k-selection → top-k reduction of §3.3.
//! * [`PilotPst`] — the paper's §2 structure (Lemma 1): an external priority
//!   search tree over a constant-fan-out *script tree*, with *pilot sets*,
//!   *representative blocks*, push-down / pull-up maintenance and
//!   Frederickson-style heap selection at query time. It answers a top-k query
//!   in `O(lg n + k/B)` I/Os and is the component used for `k ≥ B·lg n`.
//!
//! Both structures also expose a *resumable drain* ([`ThreeSidedDrain`],
//! [`PilotDrain`]): an owned best-first frontier that emits a range's points
//! in descending score order across arbitrarily many pulls without ever
//! re-descending from the root — the substrate of the incremental escalation
//! rounds in `topk-core`'s streaming and cursor query paths.

mod drain;
mod pilot;
mod point;
mod three_sided;

pub use pilot::{PilotConfig, PilotDrain, PilotPst};
pub use point::Point;
pub use three_sided::{ThreeSidedConfig, ThreeSidedDrain, ThreeSidedPst};

/// Select the `k` points with the highest scores from `points` (ties cannot
/// occur because scores are distinct); returns them sorted by descending
/// score. Pure CPU helper shared by the query paths and the test oracles.
pub fn top_k_by_score(mut points: Vec<Point>, k: usize) -> Vec<Point> {
    points.sort_unstable_by_key(|p| std::cmp::Reverse(p.score));
    points.truncate(k);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_helper_sorts_and_truncates() {
        let pts = vec![
            Point { x: 1, score: 10 },
            Point { x: 2, score: 30 },
            Point { x: 3, score: 20 },
        ];
        let top = top_k_by_score(pts, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].score, 30);
        assert_eq!(top[1].score, 20);
    }
}
